//! End-to-end request tracing: ids, spans, flight recorders, and the
//! waterfall assembler.
//!
//! A *trace* is one client operation (`round()`, `call()`, a collective
//! phase group) and every piece of work it caused anywhere in the
//! cluster. Each participant records *spans* — `(parent, node, op,
//! start, duration, notes)` — into its own fixed-capacity
//! [`FlightRecorder`]; the trace context (trace id + parent span id)
//! rides the wire frame so server-side spans link causally under the
//! client's RPC-attempt spans. A client-side assembler
//! ([`TraceTree::assemble`]) later stitches the per-node span sets into
//! one waterfall.
//!
//! Ids are plain counters ([`SpanId::next`], [`TraceId::next`]):
//! deterministic under seeded runs, unique process-wide (every daemon
//! in this reproduction shares the process), and free of any wall-clock
//! requirement — timestamps come from one process-global monotonic
//! epoch ([`now_ns`]), so client and server spans share a timeline.
//!
//! # Retention
//!
//! `PVFS_TRACE=off|slow:<ms>|sample:<1/n>|all` decides which traces the
//! *client* keeps (`slow:` is the slow-request log: only traces whose
//! root span meets the threshold are retained; `sample:1/n` keeps every
//! n-th). Daemons are simpler: they record whenever a frame carries
//! trace context, and their ring buffer (capacity `PVFS_TRACE_CAP`,
//! default [`DEFAULT_TRACE_CAP`] spans) forgets the oldest spans first.
//! Memory is therefore bounded by construction on every node.
//!
//! # Observer effect
//!
//! Scraping a recorder (the `GetTrace` RPC) never perturbs counters or
//! traces: scrape frames carry no trace context, transports exclude
//! them from wire/queue/service accounting exactly like `GetStats`,
//! and reading a ring clones it without consuming anything.

use crate::error::{PvfsError, PvfsResult};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default [`FlightRecorder`] capacity, in spans (`PVFS_TRACE_CAP`).
pub const DEFAULT_TRACE_CAP: usize = 4096;

/// Nanoseconds since the process-global monotonic epoch. Comparable
/// across every recorder in the process — the whole cluster shares it.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Identifies one causally-linked tree of spans. `TraceId(0)` is
/// reserved for "no trace".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The reserved "not traced" id.
    pub const NONE: TraceId = TraceId(0);

    /// A fresh process-unique trace id (a counter: deterministic under
    /// seeded runs, never colliding across clients in one process).
    pub fn next() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        TraceId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    /// Parse the rendering produced by `Display` (hex, no prefix).
    pub fn parse(s: &str) -> PvfsResult<TraceId> {
        u64::from_str_radix(s.trim(), 16)
            .map(TraceId)
            .map_err(|_| PvfsError::invalid(format!("'{s}' is not a trace id")))
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

/// Identifies one span within the process. `SpanId(0)` means "no
/// parent" — the root of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The reserved "no parent" id carried by root spans.
    pub const NONE: SpanId = SpanId(0);

    /// A fresh process-unique span id.
    pub fn next() -> SpanId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        SpanId(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

/// The causal context propagated in the wire frame: which trace this
/// request belongs to and which client span fathered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every resulting span joins.
    pub trace: TraceId,
    /// The parent for spans the receiving daemon records.
    pub parent: SpanId,
}

/// One timed segment of work inside a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// The causal parent ([`SpanId::NONE`] for the trace root).
    pub parent: SpanId,
    /// Which node recorded it: `"client3"`, `"iod0"`, `"mgr"`.
    pub node: String,
    /// Phase tag: `"round"`, `"rpc:ReadList"`, `"queue"`, `"service"`,
    /// `"storage:read"`, `"journal:fsync"`, `"phase_exchange"`, ...
    pub op: String,
    /// Start, in [`now_ns`] time.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for point events like `failover`).
    pub dur_ns: u64,
    /// Annotations: `"retry#2"`, `"hedge"`, `"failover"`,
    /// `"quorum_ack:3/3"`, the RPC's target server, ...
    pub notes: Vec<String>,
}

struct Ring {
    spans: VecDeque<Span>,
    dropped: u64,
}

/// A fixed-capacity ring buffer of completed spans. Lock-light: one
/// short-held mutex per recorder, no allocation beyond the spans
/// themselves, oldest spans evicted first. Every daemon, the manager,
/// and the client own exactly one.
pub struct FlightRecorder {
    cap: usize,
    inner: Mutex<Ring>,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ring = self.inner.lock().unwrap();
        f.debug_struct("FlightRecorder")
            .field("cap", &self.cap)
            .field("len", &ring.spans.len())
            .field("dropped", &ring.dropped)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `cap` spans (`cap` is clamped to at
    /// least 1 — a zero-capacity recorder would silently drop every
    /// span, which `PVFS_TRACE_CAP` rejects loudly instead).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            inner: Mutex::new(Ring {
                spans: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// A recorder sized by `PVFS_TRACE_CAP` (default
    /// [`DEFAULT_TRACE_CAP`]). Panics on a malformed value, like every
    /// other `PVFS_*` knob: a typo'd cap must not silently change
    /// retention.
    pub fn from_env() -> FlightRecorder {
        let cap =
            trace_cap_from_env().unwrap_or_else(|e| panic!("trace configuration rejected: {e}"));
        FlightRecorder::new(cap)
    }

    /// The configured capacity in spans.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().spans.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans evicted so far to honor the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Record one completed span, evicting the oldest beyond capacity.
    pub fn push(&self, span: Span) {
        let mut ring = self.inner.lock().unwrap();
        if ring.spans.len() == self.cap {
            ring.spans.pop_front();
            ring.dropped += 1;
        }
        ring.spans.push_back(span);
    }

    /// Record a batch of completed spans.
    pub fn extend(&self, spans: impl IntoIterator<Item = Span>) {
        let mut ring = self.inner.lock().unwrap();
        for span in spans {
            if ring.spans.len() == self.cap {
                ring.spans.pop_front();
                ring.dropped += 1;
            }
            ring.spans.push_back(span);
        }
    }

    /// Every retained span of one trace, oldest first. A pure read:
    /// repeated scrapes return identical results on a quiescent ring.
    pub fn for_trace(&self, trace: TraceId) -> Vec<Span> {
        self.inner
            .lock()
            .unwrap()
            .spans
            .iter()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect()
    }

    /// Every retained span, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        self.inner.lock().unwrap().spans.iter().cloned().collect()
    }

    /// Forget everything (test isolation; `ResetStats` leaves traces
    /// alone — they are diagnostics, not counters).
    pub fn clear(&self) {
        let mut ring = self.inner.lock().unwrap();
        ring.spans.clear();
        ring.dropped = 0;
    }
}

/// Client-side trace retention policy (`PVFS_TRACE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No tracing at all: no context on the wire, byte-identical frames
    /// to an untraced build. The default.
    #[default]
    Off,
    /// Trace every operation but retain only those whose root span
    /// lasted at least this long — the slow-request log.
    Slow(Duration),
    /// Head sampling: trace (and retain) every n-th operation.
    Sample(u64),
    /// Trace and retain everything (bounded by the recorder capacity).
    All,
}

impl TraceMode {
    /// Parse a `PVFS_TRACE` spec: `off`, `slow:<ms>`, `sample:<1/n>`
    /// (the `1/` is optional: `sample:16` ≡ `sample:1/16`), or `all`.
    pub fn parse(spec: &str) -> PvfsResult<TraceMode> {
        let spec = spec.trim();
        match spec {
            "off" | "" => return Ok(TraceMode::Off),
            "all" => return Ok(TraceMode::All),
            _ => {}
        }
        if let Some(ms) = spec.strip_prefix("slow:") {
            let ms: u64 = ms.parse().map_err(|_| {
                PvfsError::Config(format!(
                    "PVFS_TRACE slow threshold '{ms}' is not a number of milliseconds"
                ))
            })?;
            return Ok(TraceMode::Slow(Duration::from_millis(ms)));
        }
        if let Some(rate) = spec.strip_prefix("sample:") {
            let n = rate.strip_prefix("1/").unwrap_or(rate);
            let n: u64 = n.parse().map_err(|_| {
                PvfsError::Config(format!("PVFS_TRACE sample rate '{rate}' is not 1/<n>"))
            })?;
            if n == 0 {
                return Err(PvfsError::Config(
                    "PVFS_TRACE sample rate must be at least 1/1".into(),
                ));
            }
            return Ok(TraceMode::Sample(n));
        }
        Err(PvfsError::Config(format!(
            "PVFS_TRACE '{spec}' is not off|slow:<ms>|sample:<1/n>|all"
        )))
    }

    /// The mode selected by `PVFS_TRACE` (unset ⇒ [`TraceMode::Off`]).
    /// Panics on a malformed spec, like every other `PVFS_*` variable.
    pub fn from_env() -> TraceMode {
        match std::env::var("PVFS_TRACE") {
            Ok(spec) => TraceMode::parse(&spec)
                .unwrap_or_else(|e| panic!("trace configuration rejected: {e}")),
            Err(_) => TraceMode::Off,
        }
    }

    /// Does this mode ever record anything?
    pub fn enabled(&self) -> bool {
        !matches!(self, TraceMode::Off)
    }
}

/// Parse a `PVFS_TRACE_CAP` value: a positive span count.
pub fn parse_trace_cap(spec: &str) -> PvfsResult<usize> {
    let cap: usize = spec
        .trim()
        .parse()
        .map_err(|_| PvfsError::Config(format!("PVFS_TRACE_CAP '{spec}' is not a span count")))?;
    if cap == 0 {
        return Err(PvfsError::Config(
            "PVFS_TRACE_CAP must be at least 1 span".into(),
        ));
    }
    Ok(cap)
}

/// The recorder capacity selected by `PVFS_TRACE_CAP` (unset ⇒
/// [`DEFAULT_TRACE_CAP`]).
pub fn trace_cap_from_env() -> PvfsResult<usize> {
    match std::env::var("PVFS_TRACE_CAP") {
        Ok(spec) => parse_trace_cap(&spec),
        Err(_) => Ok(DEFAULT_TRACE_CAP),
    }
}

// ---------------------------------------------------------------------
// Thread-local span sink: lets deep storage code (shard-locked file
// ops, the disk crate's fsync path) contribute spans to the serving
// daemon's recorder without threading a context through every call.

struct SinkScope {
    ctx: TraceContext,
    node: String,
    /// Aggregated per-op timing: first start + summed duration. A list
    /// request touching 64 regions yields ONE `storage:read` span, not
    /// 64.
    acc: Vec<(String, u64, u64)>,
}

thread_local! {
    static SINK: RefCell<Option<SinkScope>> = const { RefCell::new(None) };
}

/// Runs `f` with a thread-local span sink installed: any
/// [`sink_add`] call underneath lands in `out` as spans parented to
/// `ctx.parent`, aggregated per op tag. `journal:*` contributions nest
/// under the scope's `storage:write` span when one exists (an fsync
/// inside a journaled write) and under `ctx.parent` otherwise (an
/// explicit sync barrier).
pub fn with_span_sink<R>(
    ctx: TraceContext,
    node: &str,
    out: &Arc<FlightRecorder>,
    f: impl FnOnce() -> R,
) -> R {
    let prev = SINK.with(|s| {
        s.replace(Some(SinkScope {
            ctx,
            node: node.to_string(),
            acc: Vec::new(),
        }))
    });
    let result = f();
    let scope = SINK.with(|s| s.replace(prev));
    if let Some(scope) = scope {
        let mut storage_write = SpanId::NONE;
        let mut spans: Vec<Span> = Vec::with_capacity(scope.acc.len());
        for (op, start_ns, dur_ns) in &scope.acc {
            if op.starts_with("journal:") {
                continue;
            }
            let id = SpanId::next();
            if op == "storage:write" {
                storage_write = id;
            }
            spans.push(Span {
                trace: scope.ctx.trace,
                id,
                parent: scope.ctx.parent,
                node: scope.node.clone(),
                op: op.clone(),
                start_ns: *start_ns,
                dur_ns: *dur_ns,
                notes: Vec::new(),
            });
        }
        for (op, start_ns, dur_ns) in &scope.acc {
            if !op.starts_with("journal:") {
                continue;
            }
            spans.push(Span {
                trace: scope.ctx.trace,
                id: SpanId::next(),
                parent: if storage_write == SpanId::NONE {
                    scope.ctx.parent
                } else {
                    storage_write
                },
                node: scope.node.clone(),
                op: op.clone(),
                start_ns: *start_ns,
                dur_ns: *dur_ns,
                notes: Vec::new(),
            });
        }
        out.extend(spans);
    }
    result
}

/// Contribute `dur` of work tagged `op` to the active span sink, if
/// any. Nearly free when no sink is installed (one thread-local read),
/// so the storage hot path can call it unconditionally.
pub fn sink_add(op: &str, dur: Duration) {
    SINK.with(|s| {
        if let Some(scope) = s.borrow_mut().as_mut() {
            let dur_ns = dur.as_nanos() as u64;
            match scope.acc.iter_mut().find(|(o, _, _)| o == op) {
                Some((_, _, total)) => *total += dur_ns,
                None => {
                    let start = now_ns().saturating_sub(dur_ns);
                    scope.acc.push((op.to_string(), start, dur_ns));
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// Assembly: stitch per-node span sets into one waterfall.

/// A causally-ordered view over every span of one trace, assembled
/// client-side from the local recorder plus `GetTrace` scrapes.
#[derive(Debug)]
pub struct TraceTree {
    trace: TraceId,
    /// Deduplicated spans, roots first, then by start time.
    spans: Vec<Span>,
    /// Indices of spans whose parent is [`SpanId::NONE`].
    roots: Vec<usize>,
    /// index of span -> indices of children, start-ordered.
    children: HashMap<SpanId, Vec<usize>>,
    /// Spans whose parent id is unknown to the tree (evicted from a
    /// ring, or a bug in context propagation).
    orphans: Vec<usize>,
}

impl TraceTree {
    /// Build the tree for `trace` from any collection of spans
    /// (duplicates — the same span scraped twice — are dropped by id;
    /// spans of other traces are ignored).
    pub fn assemble(trace: TraceId, spans: Vec<Span>) -> TraceTree {
        let mut seen: HashMap<SpanId, ()> = HashMap::new();
        let mut spans: Vec<Span> = spans
            .into_iter()
            .filter(|s| s.trace == trace && seen.insert(s.id, ()).is_none())
            .collect();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        let ids: HashMap<SpanId, ()> = spans.iter().map(|s| (s.id, ())).collect();
        let mut roots = Vec::new();
        let mut orphans = Vec::new();
        let mut children: HashMap<SpanId, Vec<usize>> = HashMap::new();
        for (i, s) in spans.iter().enumerate() {
            if s.parent == SpanId::NONE {
                roots.push(i);
            } else if ids.contains_key(&s.parent) {
                children.entry(s.parent).or_default().push(i);
            } else {
                orphans.push(i);
            }
        }
        TraceTree {
            trace,
            spans,
            roots,
            children,
            orphans,
        }
    }

    /// The trace this tree describes.
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Every span in the tree, start-ordered.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The root spans (one for a well-formed trace).
    pub fn roots(&self) -> Vec<&Span> {
        self.roots.iter().map(|&i| &self.spans[i]).collect()
    }

    /// Spans whose parent is missing from the tree. Empty for a
    /// well-formed trace; non-empty means a ring evicted an ancestor or
    /// context propagation broke.
    pub fn orphans(&self) -> Vec<&Span> {
        self.orphans.iter().map(|&i| &self.spans[i]).collect()
    }

    /// Total duration: the widest root span.
    pub fn duration_ns(&self) -> u64 {
        self.roots().iter().map(|s| s.dur_ns).max().unwrap_or(0)
    }

    /// Render the indented waterfall:
    ///
    /// ```text
    /// trace 00000001 · round · 2 roots? no: 1.2 ms · 9 spans
    ///   [client0] round            @0.000ms  +1.234ms
    ///     [client0] rpc:ReadList   @0.010ms  +1.100ms  iod0 retry#2
    ///       [iod0] queue           @0.050ms  +0.020ms
    ///       [iod0] service         @0.070ms  +0.900ms
    ///         [iod0] storage:read  @0.080ms  +0.700ms
    /// ```
    ///
    /// Offsets are relative to the earliest span; durations per hop.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let label = self
            .roots
            .first()
            .map(|&i| self.spans[i].op.clone())
            .unwrap_or_else(|| "?".into());
        let _ = writeln!(
            out,
            "trace {} · {label} · {:.3} ms · {} spans",
            self.trace,
            self.duration_ns() as f64 / 1e6,
            self.spans.len()
        );
        let t0 = self.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let roots = self.roots.clone();
        for i in roots {
            self.render_span(&mut out, i, 1, t0);
        }
        for &i in &self.orphans {
            let _ = writeln!(out, "  (orphan) {}", describe(&self.spans[i], t0));
        }
        if out.ends_with('\n') {
            out.pop();
        }
        out
    }

    fn render_span(&self, out: &mut String, i: usize, depth: usize, t0: u64) {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{}{}",
            "  ".repeat(depth),
            describe(&self.spans[i], t0)
        );
        if let Some(kids) = self.children.get(&self.spans[i].id) {
            for &k in kids.clone().iter() {
                self.render_span(out, k, depth + 1, t0);
            }
        }
    }
}

fn describe(s: &Span, t0: u64) -> String {
    let mut line = format!(
        "[{}] {:<18} @{:>9.3}ms  +{:>9.3}ms",
        s.node,
        s.op,
        s.start_ns.saturating_sub(t0) as f64 / 1e6,
        s.dur_ns as f64 / 1e6,
    );
    if !s.notes.is_empty() {
        line.push_str("  ");
        line.push_str(&s.notes.join(" "));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, op: &str, start: u64, dur: u64) -> Span {
        Span {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: SpanId(parent),
            node: "test".into(),
            op: op.into(),
            start_ns: start,
            dur_ns: dur,
            notes: Vec::new(),
        }
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let a = SpanId::next();
        let b = SpanId::next();
        assert!(b.0 > a.0);
        let t1 = TraceId::next();
        let t2 = TraceId::next();
        assert!(t2.0 > t1.0);
        assert_ne!(t1, TraceId::NONE);
    }

    #[test]
    fn trace_id_roundtrips_through_display() {
        let t = TraceId(0xdead_beef);
        assert_eq!(TraceId::parse(&t.to_string()).unwrap(), t);
        assert!(TraceId::parse("not-hex").is_err());
    }

    #[test]
    fn recorder_honors_its_capacity() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.push(span(1, i + 1, 0, "op", i * 10, 1));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.cap(), 3);
        assert_eq!(rec.dropped(), 2);
        // The oldest two were evicted.
        let kept: Vec<u64> = rec.snapshot().iter().map(|s| s.id.0).collect();
        assert_eq!(kept, vec![3, 4, 5]);
    }

    #[test]
    fn recorder_scrape_is_a_pure_read() {
        let rec = FlightRecorder::new(8);
        rec.push(span(7, 1, 0, "round", 0, 100));
        rec.push(span(8, 2, 0, "round", 0, 100));
        let first = rec.for_trace(TraceId(7));
        let second = rec.for_trace(TraceId(7));
        assert_eq!(first, second, "scraping consumed or reordered spans");
        assert_eq!(first.len(), 1);
        assert_eq!(rec.len(), 2);
    }

    #[test]
    fn trace_mode_parses_every_documented_form() {
        assert_eq!(TraceMode::parse("off").unwrap(), TraceMode::Off);
        assert_eq!(TraceMode::parse("all").unwrap(), TraceMode::All);
        assert_eq!(
            TraceMode::parse("slow:25").unwrap(),
            TraceMode::Slow(Duration::from_millis(25))
        );
        assert_eq!(
            TraceMode::parse("sample:1/16").unwrap(),
            TraceMode::Sample(16)
        );
        assert_eq!(
            TraceMode::parse("sample:16").unwrap(),
            TraceMode::Sample(16)
        );
        assert!(!TraceMode::Off.enabled());
        assert!(TraceMode::All.enabled());
    }

    #[test]
    fn malformed_trace_specs_are_typed_config_errors() {
        for bad in [
            "sometimes",
            "slow:",
            "slow:soon",
            "slow:-5",
            "sample:0",
            "sample:1/0",
            "sample:often",
            "all:really",
        ] {
            match TraceMode::parse(bad) {
                Err(PvfsError::Config(msg)) => {
                    assert!(msg.contains("PVFS_TRACE"), "unhelpful error: {msg}")
                }
                other => panic!("'{bad}' produced {other:?}, want Config error"),
            }
        }
    }

    #[test]
    fn malformed_trace_caps_are_typed_config_errors() {
        assert_eq!(parse_trace_cap("128").unwrap(), 128);
        assert_eq!(parse_trace_cap(" 4096 ").unwrap(), 4096);
        for bad in ["0", "-1", "lots", "4k", ""] {
            match parse_trace_cap(bad) {
                Err(PvfsError::Config(msg)) => {
                    assert!(msg.contains("PVFS_TRACE_CAP"), "unhelpful error: {msg}")
                }
                other => panic!("'{bad}' produced {other:?}, want Config error"),
            }
        }
    }

    #[test]
    fn assembly_builds_one_tree_and_flags_orphans() {
        let spans = vec![
            span(9, 10, 0, "round", 0, 1000),
            span(9, 11, 10, "rpc:Read", 100, 800),
            span(9, 12, 11, "queue", 200, 50),
            span(9, 13, 11, "service", 250, 600),
            span(9, 14, 99, "storage:read", 300, 400), // parent 99 missing
            span(9, 11, 10, "rpc:Read", 100, 800),     // duplicate scrape
            span(8, 50, 0, "other-trace", 0, 5),       // filtered out
        ];
        let tree = TraceTree::assemble(TraceId(9), spans);
        assert_eq!(tree.spans().len(), 5);
        assert_eq!(tree.roots().len(), 1);
        assert_eq!(tree.roots()[0].op, "round");
        assert_eq!(tree.orphans().len(), 1);
        assert_eq!(tree.orphans()[0].op, "storage:read");
        assert_eq!(tree.duration_ns(), 1000);
    }

    #[test]
    fn waterfall_renders_indentation_and_notes() {
        let mut rpc = span(3, 2, 1, "rpc:ReadList", 10, 80);
        rpc.notes.push("iod0".into());
        rpc.notes.push("retry#2".into());
        let spans = vec![
            span(3, 1, 0, "round", 0, 100),
            rpc,
            span(3, 4, 2, "queue", 20, 5),
        ];
        let out = TraceTree::assemble(TraceId(3), spans).render();
        assert!(out.starts_with("trace 00000003 · round"), "{out}");
        assert!(out.contains("\n  [test] round"), "{out}");
        assert!(out.contains("\n    [test] rpc:ReadList"), "{out}");
        assert!(out.contains("\n      [test] queue"), "{out}");
        assert!(out.contains("iod0 retry#2"), "{out}");
        assert!(out.contains("3 spans"), "{out}");
    }

    #[test]
    fn span_sink_aggregates_per_op_and_nests_journal_under_write() {
        let rec = Arc::new(FlightRecorder::new(16));
        let ctx = TraceContext {
            trace: TraceId(40),
            parent: SpanId(7),
        };
        with_span_sink(ctx, "iod1", &rec, || {
            for _ in 0..64 {
                sink_add("storage:write", Duration::from_nanos(100));
            }
            sink_add("journal:fsync", Duration::from_nanos(500));
        });
        let spans = rec.for_trace(TraceId(40));
        assert_eq!(spans.len(), 2, "64 region writes must aggregate: {spans:?}");
        let write = spans.iter().find(|s| s.op == "storage:write").unwrap();
        assert_eq!(write.dur_ns, 6400);
        assert_eq!(write.parent, SpanId(7));
        assert_eq!(write.node, "iod1");
        let fsync = spans.iter().find(|s| s.op == "journal:fsync").unwrap();
        assert_eq!(fsync.parent, write.id, "journal nests under the write");
    }

    #[test]
    fn span_sink_is_inert_when_absent() {
        // No scope installed: must not record or panic.
        sink_add("storage:read", Duration::from_nanos(5));
        let rec = Arc::new(FlightRecorder::new(4));
        assert!(rec.is_empty());
    }
}
