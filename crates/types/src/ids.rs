//! Identifier newtypes used throughout the system.
//!
//! All ids are small copyable newtypes so that a `ServerId` can never be
//! confused with a `ClientId` or a raw index at a call site.

use std::fmt;

/// Identifies one I/O daemon (I/O server) in the cluster.
///
/// Servers are numbered `0..n_servers`. The [`crate::StripeLayout`] maps
/// file offsets onto these ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u32);

impl ServerId {
    /// Raw index, convenient for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "iod{}", self.0)
    }
}

/// Identifies one client (compute node / application process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub u32);

impl ClientId {
    /// Raw index, convenient for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client{}", self.0)
    }
}

/// Handle to an open PVFS file, issued by the manager daemon on open.
///
/// In PVFS the manager hands clients the metadata (including striping
/// parameters and I/O daemon locations) at open time; afterwards all data
/// traffic flows directly between clients and I/O daemons carrying this
/// handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileHandle(pub u64);

impl fmt::Display for FileHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fh{:#x}", self.0)
    }
}

/// Per-connection monotonically increasing request id used to match
/// responses to requests on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl RequestId {
    /// The next request id after this one.
    #[inline]
    pub fn next(self) -> RequestId {
        RequestId(self.0 + 1)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn server_id_index_roundtrip() {
        assert_eq!(ServerId(7).index(), 7);
        assert_eq!(ServerId(0).index(), 0);
    }

    #[test]
    fn client_id_index_roundtrip() {
        assert_eq!(ClientId(31).index(), 31);
    }

    #[test]
    fn request_id_next_is_monotone() {
        let r = RequestId(41);
        assert_eq!(r.next(), RequestId(42));
        assert!(r < r.next());
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<ServerId> = (0..8).map(ServerId).collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ServerId(3).to_string(), "iod3");
        assert_eq!(ClientId(2).to_string(), "client2");
        assert_eq!(FileHandle(0x10).to_string(), "fh0x10");
        assert_eq!(RequestId(5).to_string(), "req5");
    }
}
