//! PVFS user-controlled file striping.
//!
//! PVFS stripes each file round-robin across a user-chosen set of I/O
//! servers (Fig. 2 of the paper): the user picks the *base* I/O node, the
//! number of I/O nodes (*pcount*) and the *stripe size* (*ssize*,
//! default 16 384 bytes in the paper's experiments). This module is the
//! single source of truth for the logical-offset ⇄ (server, local offset)
//! mapping used by both the client library (to route requests) and the
//! I/O daemons (to locate bytes inside their local files).
//!
//! Each I/O daemon stores the stripes it owns *contiguously* in its local
//! file, in stripe order — the same trick the real PVFS iod uses so that
//! a large contiguous logical access becomes a large contiguous local
//! access.

use crate::error::{PvfsError, PvfsResult};
use crate::ids::ServerId;
use crate::region::Region;

/// The paper's default stripe size: 16 KiB.
pub const DEFAULT_STRIPE_SIZE: u64 = 16 * 1024;

/// Striping parameters for one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StripeLayout {
    /// First I/O server holding stripe 0.
    pub base: u32,
    /// Number of I/O servers the file is striped across.
    pub pcount: u32,
    /// Bytes per stripe unit.
    pub ssize: u64,
}

impl StripeLayout {
    /// Create a layout, validating the parameters.
    pub fn new(base: u32, pcount: u32, ssize: u64) -> PvfsResult<StripeLayout> {
        let l = StripeLayout {
            base,
            pcount,
            ssize,
        };
        l.validate()?;
        Ok(l)
    }

    /// The paper's configuration: 8 I/O servers starting at node 0,
    /// 16 KiB stripes.
    pub fn paper_default(pcount: u32) -> StripeLayout {
        StripeLayout {
            base: 0,
            pcount,
            ssize: DEFAULT_STRIPE_SIZE,
        }
    }

    /// Check structural validity (nonzero pcount and stripe size).
    pub fn validate(&self) -> PvfsResult<()> {
        if self.pcount == 0 {
            return Err(PvfsError::invalid("stripe pcount must be nonzero"));
        }
        if self.ssize == 0 {
            return Err(PvfsError::invalid("stripe size must be nonzero"));
        }
        Ok(())
    }

    /// Index of the stripe unit containing `offset`.
    #[inline]
    pub fn stripe_index(&self, offset: u64) -> u64 {
        offset / self.ssize
    }

    /// The logical region covered by stripe unit `index`.
    #[inline]
    pub fn stripe_region(&self, index: u64) -> Region {
        Region::new(index * self.ssize, self.ssize)
    }

    /// Which *slot* (0..pcount) owns the stripe containing `offset`.
    #[inline]
    pub fn slot_of(&self, offset: u64) -> u32 {
        (self.stripe_index(offset) % self.pcount as u64) as u32
    }

    /// Which server owns the byte at `offset`.
    ///
    /// Wrapping: replica-rewritten layouts (see `pvfs-replica`) encode a
    /// mirror's placement as `base = mirror_server - slot` in wrapping
    /// u32 arithmetic, so `base + slot` must wrap back rather than
    /// overflow. Slot arithmetic and local offsets are unaffected.
    #[inline]
    pub fn server_of(&self, offset: u64) -> ServerId {
        ServerId(self.base.wrapping_add(self.slot_of(offset)))
    }

    /// The server occupying `slot` (wrapping; see [`server_of`](Self::server_of)).
    #[inline]
    pub fn server_at_slot(&self, slot: u32) -> ServerId {
        debug_assert!(slot < self.pcount);
        ServerId(self.base.wrapping_add(slot))
    }

    /// All servers this layout can touch.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.pcount).map(|s| self.server_at_slot(s))
    }

    /// Map a logical offset to `(server, local offset)`.
    ///
    /// Stripes owned by a slot are packed contiguously in local-file
    /// order: local stripe `k` of a slot is global stripe
    /// `k * pcount + slot`.
    pub fn to_local(&self, offset: u64) -> (ServerId, u64) {
        let g = self.stripe_index(offset);
        let slot = (g % self.pcount as u64) as u32;
        let local_stripe = g / self.pcount as u64;
        let within = offset % self.ssize;
        (
            self.server_at_slot(slot),
            local_stripe * self.ssize + within,
        )
    }

    /// Inverse of [`to_local`](Self::to_local): map `(slot, local
    /// offset)` back to the logical file offset.
    pub fn to_logical(&self, slot: u32, local_offset: u64) -> u64 {
        let local_stripe = local_offset / self.ssize;
        let within = local_offset % self.ssize;
        let g = local_stripe * self.pcount as u64 + slot as u64;
        g * self.ssize + within
    }

    /// Decompose a logical region into stripe-aligned segments, each
    /// entirely owned by one server. Segments come out in logical-offset
    /// order.
    pub fn segments(&self, region: Region) -> SegmentIter<'_> {
        SegmentIter {
            layout: self,
            cursor: region.offset,
            end: region.end(),
        }
    }

    /// The set of distinct servers a logical region touches, in slot
    /// order. A contiguous PVFS request is sent to exactly these servers;
    /// each extracts its own stripes.
    pub fn servers_touched(&self, region: Region) -> Vec<ServerId> {
        if region.is_empty() {
            return Vec::new();
        }
        let stripes = self.stripe_index(region.end() - 1) - self.stripe_index(region.offset) + 1;
        if stripes >= self.pcount as u64 {
            return self.servers().collect();
        }
        let first = self.stripe_index(region.offset);
        let mut slots: Vec<u32> = (0..stripes)
            .map(|i| ((first + i) % self.pcount as u64) as u32)
            .collect();
        slots.sort_unstable();
        slots.dedup();
        slots.into_iter().map(|s| self.server_at_slot(s)).collect()
    }

    /// Bytes of `region` stored on `slot`. Closed-form would be fiddly;
    /// regions in this system are modest in stripe count, so walk the
    /// segments.
    pub fn bytes_on_slot(&self, region: Region, slot: u32) -> u64 {
        self.segments(region)
            .filter(|s| s.slot == slot)
            .map(|s| s.logical.len)
            .sum()
    }
}

impl Default for StripeLayout {
    fn default() -> Self {
        StripeLayout::paper_default(8)
    }
}

/// One stripe-aligned piece of a logical region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeSegment {
    /// Slot (0..pcount) owning this piece.
    pub slot: u32,
    /// Server owning this piece.
    pub server: ServerId,
    /// The logical bytes covered.
    pub logical: Region,
    /// Offset of those bytes inside the server's local file.
    pub local_offset: u64,
}

/// Iterator over [`StripeSegment`]s of a region. See
/// [`StripeLayout::segments`].
pub struct SegmentIter<'a> {
    layout: &'a StripeLayout,
    cursor: u64,
    end: u64,
}

impl Iterator for SegmentIter<'_> {
    type Item = StripeSegment;

    fn next(&mut self) -> Option<StripeSegment> {
        if self.cursor >= self.end {
            return None;
        }
        let l = self.layout;
        let stripe_end = (l.stripe_index(self.cursor) + 1) * l.ssize;
        let seg_end = stripe_end.min(self.end);
        let logical = Region::new(self.cursor, seg_end - self.cursor);
        let (server, local_offset) = l.to_local(self.cursor);
        let slot = l.slot_of(self.cursor);
        self.cursor = seg_end;
        Some(StripeSegment {
            slot,
            server,
            logical,
            local_offset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(pcount: u32, ssize: u64) -> StripeLayout {
        StripeLayout::new(0, pcount, ssize).unwrap()
    }

    #[test]
    fn validation_rejects_degenerate_layouts() {
        assert!(StripeLayout::new(0, 0, 16).is_err());
        assert!(StripeLayout::new(0, 4, 0).is_err());
        assert!(StripeLayout::new(3, 4, 16).is_ok());
    }

    #[test]
    fn paper_default_matches_section_4_1() {
        let l = StripeLayout::paper_default(8);
        assert_eq!(l.pcount, 8);
        assert_eq!(l.ssize, 16 * 1024);
        assert_eq!(l.base, 0);
    }

    #[test]
    fn round_robin_server_assignment() {
        let l = layout(4, 10);
        assert_eq!(l.server_of(0), ServerId(0));
        assert_eq!(l.server_of(9), ServerId(0));
        assert_eq!(l.server_of(10), ServerId(1));
        assert_eq!(l.server_of(39), ServerId(3));
        assert_eq!(l.server_of(40), ServerId(0)); // wraps
    }

    #[test]
    fn base_offsets_server_ids() {
        let l = StripeLayout::new(2, 3, 8).unwrap();
        assert_eq!(l.server_of(0), ServerId(2));
        assert_eq!(l.server_of(8), ServerId(3));
        assert_eq!(l.server_of(16), ServerId(4));
        assert_eq!(l.server_of(24), ServerId(2));
    }

    #[test]
    fn local_offsets_pack_stripes_contiguously() {
        let l = layout(4, 10);
        // Global stripe 0 -> slot 0 local stripe 0.
        assert_eq!(l.to_local(0), (ServerId(0), 0));
        assert_eq!(l.to_local(5), (ServerId(0), 5));
        // Global stripe 4 -> slot 0 local stripe 1 => local offset 10.
        assert_eq!(l.to_local(40), (ServerId(0), 10));
        assert_eq!(l.to_local(47), (ServerId(0), 17));
        // Global stripe 5 -> slot 1 local stripe 1.
        assert_eq!(l.to_local(50), (ServerId(1), 10));
    }

    #[test]
    fn to_logical_inverts_to_local() {
        let l = layout(8, 16384);
        for off in [
            0u64,
            1,
            16383,
            16384,
            131071,
            131072,
            1_000_000,
            123_456_789,
        ] {
            let (server, local) = l.to_local(off);
            let slot = server.0 - l.base;
            assert_eq!(l.to_logical(slot, local), off, "offset {off}");
        }
    }

    #[test]
    fn segments_tile_a_region() {
        let l = layout(3, 10);
        let segs: Vec<_> = l.segments(Region::new(5, 30)).collect();
        assert_eq!(segs.len(), 4); // [5,10) [10,20) [20,30) [30,35)
        assert_eq!(segs[0].logical, Region::new(5, 5));
        assert_eq!(segs[0].server, ServerId(0));
        assert_eq!(segs[1].logical, Region::new(10, 10));
        assert_eq!(segs[1].server, ServerId(1));
        assert_eq!(segs[3].logical, Region::new(30, 5));
        assert_eq!(segs[3].server, ServerId(0));
        let total: u64 = segs.iter().map(|s| s.logical.len).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn segments_of_empty_region() {
        let l = layout(3, 10);
        assert_eq!(l.segments(Region::new(5, 0)).count(), 0);
    }

    #[test]
    fn servers_touched_small_and_large() {
        let l = layout(4, 10);
        assert_eq!(l.servers_touched(Region::new(0, 5)), vec![ServerId(0)]);
        assert_eq!(
            l.servers_touched(Region::new(5, 10)),
            vec![ServerId(0), ServerId(1)]
        );
        // Spans >= pcount stripes: all servers.
        assert_eq!(l.servers_touched(Region::new(0, 40)).len(), 4);
        assert_eq!(l.servers_touched(Region::new(0, 0)), vec![]);
        // Wrapping subset: stripes 3 and 4 are slots 3 and 0.
        assert_eq!(
            l.servers_touched(Region::new(30, 20)),
            vec![ServerId(0), ServerId(3)]
        );
    }

    #[test]
    fn bytes_on_slot_sums_to_region_len() {
        let l = layout(4, 10);
        let r = Region::new(3, 97);
        let total: u64 = (0..4).map(|s| l.bytes_on_slot(r, s)).sum();
        assert_eq!(total, 97);
        assert_eq!(l.bytes_on_slot(Region::new(0, 10), 0), 10);
        assert_eq!(l.bytes_on_slot(Region::new(0, 10), 1), 0);
    }

    #[test]
    fn wrapped_base_keeps_slot_math_intact() {
        // A replica-rewritten layout addressing mirror server 2 for
        // slot 3 carries base = 2 - 3 (wrapping). Server arithmetic
        // wraps back and slot/local math is untouched.
        let mirrored = StripeLayout {
            base: 2u32.wrapping_sub(3),
            pcount: 4,
            ssize: 10,
        };
        assert_eq!(mirrored.server_at_slot(3), ServerId(2));
        let plain = StripeLayout::new(0, 4, 10).unwrap();
        for off in [0u64, 9, 10, 35, 79, 123] {
            assert_eq!(mirrored.slot_of(off), plain.slot_of(off));
            assert_eq!(mirrored.to_local(off).1, plain.to_local(off).1);
            let slot = plain.slot_of(off);
            assert_eq!(mirrored.to_logical(slot, plain.to_local(off).1), off);
        }
        // bytes_on_slot walks segments, which call server_at_slot on
        // every stripe — must not overflow in debug builds.
        assert_eq!(mirrored.bytes_on_slot(Region::new(0, 40), 3), 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_layout() -> impl Strategy<Value = StripeLayout> {
        (0u32..4, 1u32..16, 1u64..100_000).prop_map(|(base, pcount, ssize)| StripeLayout {
            base,
            pcount,
            ssize,
        })
    }

    proptest! {
        #[test]
        fn local_logical_roundtrip(l in arb_layout(), off in 0u64..1_000_000_000) {
            let (server, local) = l.to_local(off);
            let slot = server.0 - l.base;
            prop_assert!(slot < l.pcount);
            prop_assert_eq!(l.to_logical(slot, local), off);
        }

        #[test]
        fn segments_partition_region(
            l in arb_layout(),
            off in 0u64..1_000_000,
            len in 1u64..1_000_000,
        ) {
            let r = Region::new(off, len);
            let segs: Vec<_> = l.segments(r).collect();
            // Segments tile the region exactly, in order.
            let mut cursor = r.offset;
            for s in &segs {
                prop_assert_eq!(s.logical.offset, cursor);
                prop_assert!(s.logical.len <= l.ssize);
                prop_assert_eq!(l.server_of(s.logical.offset), s.server);
                // A segment never crosses a stripe boundary.
                prop_assert_eq!(
                    l.stripe_index(s.logical.offset),
                    l.stripe_index(s.logical.end() - 1)
                );
                cursor = s.logical.end();
            }
            prop_assert_eq!(cursor, r.end());
        }

        #[test]
        fn servers_touched_matches_segments(
            l in arb_layout(),
            off in 0u64..1_000_000,
            len in 1u64..200_000,
        ) {
            let r = Region::new(off, len);
            let mut via_segments: Vec<ServerId> =
                l.segments(r).map(|s| s.server).collect();
            via_segments.sort_unstable();
            via_segments.dedup();
            prop_assert_eq!(l.servers_touched(r), via_segments);
        }

        #[test]
        fn local_offsets_disjoint_within_server(
            l in arb_layout(),
            off in 0u64..100_000,
            len in 1u64..50_000,
        ) {
            // Distinct logical offsets on the same server map to distinct
            // local offsets (injectivity over a sampled region).
            let r = Region::new(off, len);
            let step = (len / 64).max(1);
            let mut seen = std::collections::HashMap::new();
            let mut pos = r.offset;
            while pos < r.end() {
                let key = l.to_local(pos);
                if let Some(prev) = seen.insert(key, pos) {
                    prop_assert_eq!(prev, pos);
                }
                pos += step;
            }
        }
    }
}
