//! Latency metrics shared across the workspace: a log-bucketed
//! histogram, a lock-free recording wrapper, and the stats snapshot
//! every daemon can report over the wire.
//!
//! The paper reports per-test wall times; this reproduction can say
//! more — per-request RTT distributions expose *why* a configuration is
//! slow (client-chain bound vs server-queue bound), which is how
//! EXPERIMENTS.md dissects the block-block list-I/O upturn. The same
//! [`Histogram`] serves the simulator's 30-million-request runs and the
//! live path's per-RPC accounting; [`SharedHistogram`] is the
//! concurrent face used by `&self` recorders (worker pools, cloned
//! clients), and [`StatsSnapshot`] is the unit the `GetStats` control
//! RPC ships back to an observer.

use std::sync::atomic::{AtomicU64, Ordering};

/// A histogram over nanosecond durations with logarithmic buckets
/// (2 buckets per octave, ~41% resolution), cheap enough to record
/// every request of a 30-million-request simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// bucket i covers [2^(i/2), 2^((i+1)/2)) ns, with bucket 0
    /// holding everything below 1 ns.
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

const BUCKETS: usize = 128; // covers past 2^63 ns

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            return 0;
        }
        // 2 buckets per power of two, split at √2·2^k.
        let lg2 = 63 - ns.leading_zeros() as u64; // floor(log2)
        let half = u64::from(ns as f64 >= (1u64 << lg2) as f64 * std::f64::consts::SQRT_2);
        ((2 * lg2 + half) as usize).min(BUCKETS - 1)
    }

    /// Representative (geometric-ish) value of bucket `i`.
    fn bucket_value(i: usize) -> u64 {
        if i == 0 {
            return 1;
        }
        let lg2 = (i / 2) as u32;
        let base = 1u64 << lg2;
        if i.is_multiple_of(2) {
            // [2^k, sqrt2·2^k): midpoint ~1.19·2^k
            (base as f64 * 1.19) as u64
        } else {
            (base as f64 * 1.68) as u64
        }
    }

    /// Record one duration.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum += ns as u128;
        self.min = self.min.min(ns);
        self.max = self.max.max(ns);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values in nanoseconds (the codec ships
    /// it so means survive the wire).
    pub fn sum_ns(&self) -> u128 {
        self.sum
    }

    /// Mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Smallest recorded value (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max_ns(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (0.0..=1.0) in nanoseconds, resolved to
    /// bucket granularity (~±20%). Returns `None` when the histogram is
    /// empty — including one produced by merging empties — so callers
    /// can distinguish "no samples" from a genuine 0 ns measurement.
    pub fn try_percentile_ns(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some(Self::bucket_value(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Like [`try_percentile_ns`](Self::try_percentile_ns) but flattens
    /// the empty case to 0, matching `mean_ns`/`min_ns`.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        self.try_percentile_ns(p).unwrap_or(0)
    }

    /// One-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "n={} min={:.3}ms p50={:.3}ms p99={:.3}ms max={:.3}ms mean={:.3}ms",
            self.count,
            self.min_ns() as f64 / 1e6,
            self.percentile_ns(0.50) as f64 / 1e6,
            self.percentile_ns(0.99) as f64 / 1e6,
            self.max_ns() as f64 / 1e6,
            self.mean_ns() as f64 / 1e6,
        )
    }

    /// The nonzero buckets as `(index, count)` pairs — the sparse form
    /// the wire codec ships (most of the 128 buckets are empty).
    pub fn to_sparse(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Rebuild a histogram from its sparse wire form. Returns `None`
    /// for out-of-range bucket indices (untrusted input); `min`/`max`
    /// are trusted as shipped, with the empty histogram normalized.
    pub fn from_sparse(sparse: &[(u32, u64)], sum: u128, min: u64, max: u64) -> Option<Histogram> {
        let mut h = Histogram::new();
        for &(i, c) in sparse {
            let slot = h.buckets.get_mut(i as usize)?;
            *slot = slot.checked_add(c)?;
            h.count = h.count.checked_add(c)?;
        }
        if h.count > 0 {
            h.sum = sum;
            h.min = min;
            h.max = max;
        }
        Some(h)
    }

    /// The samples recorded since `earlier` was snapshotted from the
    /// same monotonically-growing histogram. Buckets, count and sum
    /// subtract exactly; min/max cannot (old extremes may predate the
    /// interval), so they are re-derived from the surviving buckets'
    /// representative bounds — the same ±bucket resolution percentiles
    /// already have.
    pub fn since(&self, earlier: &Histogram) -> Histogram {
        let mut d = Histogram::new();
        for (i, (a, b)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            d.buckets[i] = a.saturating_sub(*b);
            d.count += d.buckets[i];
        }
        d.sum = self.sum.saturating_sub(earlier.sum);
        if d.count > 0 {
            let first = d.buckets.iter().position(|&c| c != 0).unwrap_or(0);
            let last = d.buckets.iter().rposition(|&c| c != 0).unwrap_or(0);
            d.min = Self::bucket_value(first).max(self.min);
            d.max = Self::bucket_value(last).min(self.max).max(d.min);
        }
        d
    }

    /// Compact JSON object (counts in ns) for machine-readable dumps.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"min_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"mean_ns\":{}}}",
            self.count(),
            self.min_ns(),
            self.percentile_ns(0.50),
            self.percentile_ns(0.95),
            self.percentile_ns(0.99),
            self.max_ns(),
            self.mean_ns(),
        )
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A [`Histogram`] that can be recorded into through `&self` from many
/// threads at once: one relaxed atomic per bucket, plus atomic
/// count/sum/min/max. Recording is a handful of uncontended relaxed
/// atomic ops — cheap enough for every RPC on the live path; snapshots
/// are not linearizable across fields (a recorder may be mid-flight),
/// which per-request accounting tolerates by design.
#[derive(Debug)]
pub struct SharedHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// ns sum in u64: >500 years of accumulated latency before wrap.
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl SharedHistogram {
    /// An empty shared histogram.
    pub fn new() -> SharedHistogram {
        SharedHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one duration in nanoseconds.
    pub fn record(&self, ns: u64) {
        self.buckets[Histogram::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(ns, Ordering::Relaxed);
        self.min.fetch_min(ns, Ordering::Relaxed);
        self.max.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record an elapsed [`std::time::Duration`].
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of samples so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// An owned point-in-time copy.
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (i, b) in self.buckets.iter().enumerate() {
            h.buckets[i] = b.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed) as u128;
        h.min = self.min.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        // Normalize torn reads: the aggregate fields may lag or lead the
        // buckets; keep the invariants percentile_ns relies on.
        if h.count == 0 {
            h.buckets.iter_mut().for_each(|b| *b = 0);
            h.sum = 0;
            h.min = u64::MAX;
            h.max = 0;
        }
        h
    }

    /// Zero every bucket and aggregate (the `ResetStats` RPC).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

impl Default for SharedHistogram {
    fn default() -> Self {
        SharedHistogram::new()
    }
}

/// Everything one daemon reports through the `GetStats` control RPC:
/// the raw request/byte counters (identical to the in-process
/// `ServerStats` snapshot, field for field), worker-pool gauges, and
/// the queue-wait / service-time latency distributions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total requests served (data + metadata, not stats scrapes).
    pub requests: u64,
    /// Contiguous `Read`/`Write` requests.
    pub contiguous_requests: u64,
    /// List-I/O (`ReadList`/`WriteList`/vector) requests.
    pub list_requests: u64,
    /// File regions touched across all list requests.
    pub regions: u64,
    /// Payload bytes read from storage.
    pub bytes_read: u64,
    /// Payload bytes written to storage.
    pub bytes_written: u64,
    /// Requests answered with an error response.
    pub errors: u64,
    /// Wire bytes received (stats scrapes excluded — see the codec's
    /// observer-effect note).
    pub bytes_rx: u64,
    /// Wire bytes sent.
    pub bytes_tx: u64,
    /// Wire frames received.
    pub frames_rx: u64,
    /// Worker threads configured for this daemon's pool.
    pub workers: u64,
    /// Workers serving a request at snapshot time (gauge).
    pub busy_workers: u64,
    /// Frames received but not yet fully served (gauge: queued + in
    /// service).
    pub queue_depth: u64,
    /// Journal records appended by the storage engine (write batches +
    /// truncates; 0 on the memory backend).
    pub journal_appends: u64,
    /// Bytes appended to storage journals.
    pub journal_bytes: u64,
    /// Journal records replayed at daemon recovery.
    pub journal_replays: u64,
    /// Durability flushes (checkpoints + explicit sync barriers).
    pub flushes: u64,
    /// `fsync` syscalls issued by the storage engine.
    pub fsyncs: u64,
    /// Requests shed off a full queue with [`Overloaded`] before any
    /// worker saw them (load shedding; see DESIGN §4i).
    ///
    /// [`Overloaded`]: crate::PvfsError::Overloaded
    pub requests_shed: u64,
    /// Journal records committed but not yet checkpointed (gauge).
    pub journal_depth: u64,
    /// Time from frame arrival to a worker picking it up.
    pub queue_wait: Histogram,
    /// Time a worker spent serving the request (decode + execute +
    /// encode).
    pub service_time: Histogram,
    /// Latency of each storage-engine `fsync` syscall.
    pub fsync_time: Histogram,
}

impl StatsSnapshot {
    /// The counter fields in `ServerStats` order, paired with their
    /// names — the unit the byte-for-byte equivalence tests compare and
    /// the tables print.
    pub fn counters(&self) -> [(&'static str, u64); 16] {
        [
            ("requests", self.requests),
            ("contiguous_requests", self.contiguous_requests),
            ("list_requests", self.list_requests),
            ("regions", self.regions),
            ("bytes_read", self.bytes_read),
            ("bytes_written", self.bytes_written),
            ("errors", self.errors),
            ("bytes_rx", self.bytes_rx),
            ("bytes_tx", self.bytes_tx),
            ("frames_rx", self.frames_rx),
            ("journal_appends", self.journal_appends),
            ("journal_bytes", self.journal_bytes),
            ("journal_replays", self.journal_replays),
            ("flushes", self.flushes),
            ("fsyncs", self.fsyncs),
            ("requests_shed", self.requests_shed),
        ]
    }

    /// The snapshot as one JSON object (no external deps; the schema is
    /// documented in README § Observability).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (name, v) in self.counters() {
            out.push_str(&format!("\"{name}\":{v},"));
        }
        out.push_str(&format!(
            "\"workers\":{},\"busy_workers\":{},\"queue_depth\":{},\"journal_depth\":{},\"queue_wait\":{},\"service_time\":{},\"fsync_time\":{}}}",
            self.workers,
            self.busy_workers,
            self.queue_depth,
            self.journal_depth,
            self.queue_wait.to_json(),
            self.service_time.to_json(),
            self.fsync_time.to_json(),
        ));
        out
    }
}

/// What an anti-entropy scrub pass over one file observed and repaired
/// (see DESIGN §4j). Client-driven: the scrubber fetches `StripeDigest`
/// checksums from every copy of every stripe slot, compares them, and
/// rewrites divergent spans from the freshest copy.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Stripe slots examined (one per daemon in the file's layout).
    pub slots_scanned: u64,
    /// Per-chunk digest comparisons made across copies.
    pub digests_compared: u64,
    /// Copies whose digest probe failed (daemon down); they are skipped,
    /// not repaired, and a later scrub picks them up.
    pub copies_unreachable: u64,
    /// Copies found divergent from their slot's repair source.
    pub copies_divergent: u64,
    /// Payload bytes rewritten onto stale copies.
    pub repair_bytes: u64,
    /// Stale copies truncated because they were longer than the source.
    pub copies_truncated: u64,
}

impl ScrubReport {
    /// Accumulate another report into this one (multi-file scrubs).
    pub fn absorb(&mut self, other: &ScrubReport) {
        self.slots_scanned += other.slots_scanned;
        self.digests_compared += other.digests_compared;
        self.copies_unreachable += other.copies_unreachable;
        self.copies_divergent += other.copies_divergent;
        self.repair_bytes += other.repair_bytes;
        self.copies_truncated += other.copies_truncated;
    }

    /// True when every reachable copy agreed and nothing was rewritten.
    pub fn clean(&self) -> bool {
        self.copies_divergent == 0 && self.repair_bytes == 0 && self.copies_truncated == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.percentile_ns(0.5), 0);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    fn empty_percentiles_are_typed_none_at_every_boundary() {
        let h = Histogram::new();
        for p in [0.0, 0.5, 1.0, -1.0, 2.0] {
            assert_eq!(h.try_percentile_ns(p), None, "p={p}");
            assert_eq!(h.percentile_ns(p), 0, "p={p}");
        }
        // One sample flips it to Some at every clamped percentile.
        let mut h = h;
        h.record(42);
        for p in [0.0, 0.5, 1.0, -1.0, 2.0] {
            assert_eq!(h.try_percentile_ns(p), Some(42), "p={p}");
        }
    }

    #[test]
    fn merge_of_empties_stays_empty() {
        let mut a = Histogram::new();
        let b = Histogram::new();
        a.merge(&b);
        assert_eq!(a.count(), 0);
        assert_eq!(a.try_percentile_ns(0.5), None);
        assert_eq!(a.percentile_ns(0.99), 0);
        assert_eq!(a.min_ns(), 0);
        // Merging a real histogram afterwards recovers normal behavior:
        // the sentinel min from the empty merge must not leak out.
        let mut c = Histogram::new();
        c.record(1_000);
        a.merge(&c);
        assert_eq!(a.count(), 1);
        assert_eq!(a.try_percentile_ns(0.5), Some(1_000));
        assert_eq!(a.min_ns(), 1_000);
    }

    #[test]
    fn single_sample() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean_ns(), 1_000_000);
        assert_eq!(h.min_ns(), 1_000_000);
        assert_eq!(h.max_ns(), 1_000_000);
        // Percentiles clamp to observed range.
        assert_eq!(h.percentile_ns(0.5), 1_000_000);
        assert_eq!(h.percentile_ns(0.999), 1_000_000);
    }

    #[test]
    fn percentiles_are_order_of_magnitude_correct() {
        let mut h = Histogram::new();
        // 99 fast samples at ~1ms, 1 slow at ~1s.
        for _ in 0..99 {
            h.record(1_000_000);
        }
        h.record(1_000_000_000);
        let p50 = h.percentile_ns(0.5);
        assert!((500_000..2_000_000).contains(&p50), "p50={p50}");
        let p995 = h.percentile_ns(0.995);
        assert!(p995 > 100_000_000, "p995={p995}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean_ns(), 25);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(100);
        b.record(1_000_000);
        b.record(50);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min_ns(), 50);
        assert_eq!(a.max_ns(), 1_000_000);
    }

    #[test]
    fn zero_duration_is_representable() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    fn bucket_monotonicity() {
        // Bucket index must be nondecreasing in the value.
        let mut prev = 0;
        for shift in 0..40 {
            for frac in [0u64, 1, 3] {
                let v = (1u64 << shift) + frac * (1u64 << shift) / 4;
                let b = Histogram::bucket_of(v);
                assert!(b >= prev || v < (1 << shift), "v={v} b={b} prev={prev}");
                prev = prev.max(b);
            }
        }
    }

    #[test]
    fn summary_is_human_readable() {
        let mut h = Histogram::new();
        h.record(2_000_000);
        let s = h.summary();
        assert!(s.contains("n=1"));
        assert!(s.contains("ms"));
    }

    #[test]
    fn sparse_roundtrip_is_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 1_000, 1_000_000, u64::MAX / 2] {
            h.record(v);
        }
        let back = Histogram::from_sparse(&h.to_sparse(), h.sum, h.min, h.max).unwrap();
        assert_eq!(back, h);
        // Percentiles survive the trip too.
        assert_eq!(back.percentile_ns(0.5), h.percentile_ns(0.5));
    }

    #[test]
    fn sparse_rejects_bogus_indices() {
        assert!(Histogram::from_sparse(&[(9999, 1)], 1, 1, 1).is_none());
        // Empty sparse → normalized empty histogram.
        let h = Histogram::from_sparse(&[], 0, 0, 0).unwrap();
        assert_eq!(h, Histogram::new());
    }

    #[test]
    fn since_isolates_the_interval() {
        let mut h = Histogram::new();
        h.record(1_000);
        h.record(2_000);
        let before = h.clone();
        h.record(1_000_000);
        h.record(2_000_000);
        let d = h.since(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.mean_ns(), 1_500_000);
        // Min/max are bucket-resolution but must bracket the interval's
        // samples, not the old ones.
        assert!(d.min_ns() > 100_000, "min={}", d.min_ns());
        assert!(d.max_ns() >= 1_500_000, "max={}", d.max_ns());
        // Self-diff is empty.
        assert_eq!(h.since(&h).count(), 0);
    }

    #[test]
    fn shared_histogram_matches_serial_recording() {
        let shared = SharedHistogram::new();
        let mut serial = Histogram::new();
        for v in [5u64, 50, 500, 5_000, 50_000] {
            shared.record(v);
            serial.record(v);
        }
        assert_eq!(shared.snapshot(), serial);
        shared.reset();
        assert_eq!(shared.snapshot(), Histogram::new());
        assert_eq!(shared.count(), 0);
    }

    #[test]
    fn shared_histogram_concurrent_records_all_land() {
        use std::sync::Arc;
        let shared = Arc::new(SharedHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(1 + t * 1_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = shared.snapshot();
        assert_eq!(snap.count(), 4_000);
        assert_eq!(snap.min_ns(), 1);
        assert_eq!(snap.max_ns(), 4_000);
    }

    #[test]
    fn stats_snapshot_json_shape() {
        let mut s = StatsSnapshot {
            requests: 7,
            bytes_rx: 123,
            workers: 4,
            ..Default::default()
        };
        s.service_time.record(1_000_000);
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"requests\":7"), "{json}");
        assert!(json.contains("\"bytes_rx\":123"), "{json}");
        assert!(json.contains("\"service_time\":{\"count\":1"), "{json}");
        assert!(json.contains("\"fsync_time\":{\"count\":0"), "{json}");
        assert!(json.contains("\"journal_depth\":0"), "{json}");
        // Counter order is the ServerStats field order.
        let names: Vec<&str> = s.counters().iter().map(|(n, _)| *n).collect();
        assert_eq!(names[0], "requests");
        assert_eq!(names[9], "frames_rx");
        assert_eq!(names[10], "journal_appends");
        assert_eq!(names[14], "fsyncs");
        assert_eq!(names[15], "requests_shed");
    }
}
