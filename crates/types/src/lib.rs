//! Shared vocabulary for the PVFS list-I/O reproduction.
//!
//! This crate defines the types every other crate in the workspace speaks:
//!
//! * [`Region`] / [`RegionList`] — contiguous byte ranges and ordered lists
//!   of them, the currency of noncontiguous I/O. A noncontiguous request in
//!   the paper is exactly a pair of region lists (one for memory, one for
//!   file) with equal total lengths.
//! * [`StripeLayout`] — PVFS user-controlled striping (base node, pcount,
//!   stripe size) and the logical-offset ⇄ (server, local offset) mapping
//!   both the client library and the I/O daemons rely on.
//! * [`Datatype`] — MPI-like datatype descriptors (the paper's §5 future
//!   work) that compress regular access patterns and flatten to region
//!   lists.
//! * [`Histogram`] / [`SharedHistogram`] / [`StatsSnapshot`] — the
//!   latency-metrics vocabulary shared by the simulator, the live
//!   transports and the `GetStats` control RPC.
//! * [`trace`] — distributed request tracing: `TraceId`/`SpanId`,
//!   compact [`Span`] records, the per-daemon [`FlightRecorder`] ring
//!   buffer, and the [`TraceTree`] waterfall assembler.
//! * ids and error types used across the wire protocol, servers and
//!   clients.
//!
//! Nothing here performs I/O; these are pure data structures with heavily
//! tested invariants.

pub mod datatype;
pub mod error;
pub mod ids;
pub mod metrics;
pub mod region;
pub mod striping;
pub mod trace;

pub use datatype::Datatype;
pub use error::{PvfsError, PvfsResult};
pub use ids::{ClientId, FileHandle, RequestId, ServerId};
pub use metrics::{Histogram, ScrubReport, SharedHistogram, StatsSnapshot};
pub use region::{align_lists, Region, RegionList, TransferPiece};
pub use striping::{StripeLayout, StripeSegment};
pub use trace::{
    FlightRecorder, Span, SpanId, TraceContext, TraceId, TraceMode, TraceTree, DEFAULT_TRACE_CAP,
};
