//! Durable per-handle storage: a real local file plus a write-ahead
//! intent journal.
//!
//! This is the backend PVFS itself had: each I/O daemon keeps the
//! stripe of every file handle in a plain local Unix file (`h<N>.data`
//! under the daemon's data directory), leaning on the kernel page cache
//! exactly as §2 of the paper describes. What the original lacked —
//! and what makes the chaos suite honest — is crash atomicity for
//! noncontiguous list writes: a ⌈n/64⌉-region request must never be
//! half-visible after a restart. [`FileStore`] gets that from a
//! write-ahead journal (`h<N>.journal`, see [`crate::journal`]): the
//! whole batch is committed as one checksummed intent record before any
//! byte touches the data file, recovery replays committed records and
//! discards torn ones, and a periodic *checkpoint* (fsync data, zero
//! journal) bounds replay work.
//!
//! Durability is tunable per [`SyncPolicy`]: `always` fsyncs the
//! journal before a write acknowledges (collective `write_all` results
//! are durable at return), `interval:<ms>` group-commits, `never`
//! leaves fsync to explicit [`FileStore::sync`] barriers.

use crate::backend::{CrashPoint, StorageBackend, StorageMetrics, SyncPolicy};
use crate::journal::{Journal, JournalRecord};
use pvfs_types::{PvfsError, PvfsResult};
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Checkpoint after this many committed records…
pub const JOURNAL_CHECKPOINT_RECORDS: u64 = 128;
/// …or after this many journal bytes, whichever comes first.
pub const JOURNAL_CHECKPOINT_BYTES: u64 = 4 << 20;

/// One handle's durable store: data file + intent journal.
#[derive(Debug)]
pub struct FileStore {
    data: File,
    data_path: PathBuf,
    /// One past the highest byte written (== data file length).
    size: u64,
    /// Bytes guaranteed recoverable after a crash right now.
    durable: u64,
    journal: Journal,
    sync: SyncPolicy,
    last_sync: Instant,
    metrics: Arc<StorageMetrics>,
    crash: Option<CrashPoint>,
    /// Set once an injected crash fires: the store is dead until the
    /// daemon restarts, like a powered-off disk.
    wedged: bool,
}

fn storage_err(ctx: &str, path: &Path, e: io::Error) -> PvfsError {
    PvfsError::Storage(format!("{ctx} {}: {e}", path.display()))
}

impl FileStore {
    /// Open (creating if absent) the store for `handle` under `dir`,
    /// replaying any committed journal records left by a crash. After
    /// open the journal is empty and the data file authoritative.
    pub fn open(
        dir: &Path,
        handle: u64,
        sync: SyncPolicy,
        metrics: Arc<StorageMetrics>,
    ) -> PvfsResult<FileStore> {
        std::fs::create_dir_all(dir).map_err(|e| storage_err("create data dir", dir, e))?;
        let data_path = dir.join(format!("h{handle}.data"));
        let journal_path = dir.join(format!("h{handle}.journal"));
        let fresh = !data_path.exists() || !journal_path.exists();
        let data = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&data_path)
            .map_err(|e| storage_err("open data file", &data_path, e))?;
        let (mut journal, replay) = Journal::open(&journal_path)
            .map_err(|e| storage_err("open journal", &journal_path, e))?;
        if fresh {
            // Durability gap: creating h<N>.{data,journal} only stages
            // directory entries in the parent's page cache. A power cut
            // before the kernel writes them back would orphan the very
            // journal a post-crash replay needs, so make the entries
            // durable before acknowledging any write against this store.
            let t = Instant::now();
            File::open(dir)
                .and_then(|d| d.sync_all())
                .map_err(|e| storage_err("fsync data dir", dir, e))?;
            metrics.record_fsync(t.elapsed());
        }
        let mut size = data
            .metadata()
            .map_err(|e| storage_err("stat data file", &data_path, e))?
            .len();
        if !replay.is_empty() {
            // Recovery: apply every committed intent in order, then
            // checkpoint so the journal never replays twice.
            for record in &replay {
                match record {
                    JournalRecord::WriteBatch { runs, .. } => {
                        for (offset, payload) in runs {
                            data.write_all_at(payload, *offset)
                                .map_err(|e| storage_err("replay write", &data_path, e))?;
                            size = size.max(offset + payload.len() as u64);
                        }
                    }
                    JournalRecord::Truncate { size: to, .. } => {
                        if *to < size {
                            data.set_len(*to)
                                .map_err(|e| storage_err("replay truncate", &data_path, e))?;
                            size = *to;
                        }
                    }
                }
            }
            metrics
                .journal_replays
                .fetch_add(replay.len() as u64, Ordering::Relaxed);
            let t = Instant::now();
            data.sync_data()
                .map_err(|e| storage_err("fsync data file", &data_path, e))?;
            metrics.record_fsync(t.elapsed());
            let t = Instant::now();
            journal
                .checkpoint()
                .map_err(|e| storage_err("checkpoint journal", &journal_path, e))?;
            metrics.record_fsync(t.elapsed());
            metrics.flushes.fetch_add(1, Ordering::Relaxed);
        }
        Ok(FileStore {
            data,
            data_path,
            size,
            durable: size,
            journal,
            sync,
            last_sync: Instant::now(),
            metrics,
            crash: None,
            wedged: false,
        })
    }

    fn check_live(&self) -> PvfsResult<()> {
        if self.wedged {
            return Err(PvfsError::Storage(format!(
                "store {} is wedged by an injected crash (restart the daemon to recover)",
                self.data_path.display()
            )));
        }
        Ok(())
    }

    /// Fsync the journal if the policy says this write must commit to
    /// stable storage now.
    fn sync_journal_per_policy(&mut self) -> PvfsResult<bool> {
        let due = match self.sync {
            SyncPolicy::Always => true,
            SyncPolicy::Interval(window) => self.last_sync.elapsed() >= window,
            SyncPolicy::Never => false,
        };
        if due {
            let t = Instant::now();
            self.journal
                .sync()
                .map_err(|e| storage_err("fsync journal", &self.data_path, e))?;
            self.metrics.record_fsync(t.elapsed());
            self.last_sync = Instant::now();
        }
        Ok(due)
    }

    /// Fsync the data file and zero the journal: everything written so
    /// far becomes the data file's problem (and is durable).
    fn checkpoint(&mut self) -> PvfsResult<()> {
        let t = Instant::now();
        self.data
            .sync_data()
            .map_err(|e| storage_err("fsync data file", &self.data_path, e))?;
        self.metrics.record_fsync(t.elapsed());
        let depth = self.journal.depth();
        let t = Instant::now();
        self.journal
            .checkpoint()
            .map_err(|e| storage_err("checkpoint journal", &self.data_path, e))?;
        self.metrics.record_fsync(t.elapsed());
        sub_gauge(&self.metrics, depth);
        self.metrics.flushes.fetch_add(1, Ordering::Relaxed);
        self.durable = self.size;
        self.last_sync = Instant::now();
        Ok(())
    }
}

/// Decrement the shared journal-depth gauge by `n` without underflow
/// (stores of one daemon share the gauge).
fn sub_gauge(metrics: &StorageMetrics, n: u64) {
    if n > 0 {
        let _ = metrics
            .journal_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(n))
            });
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        // The journal stays on disk (it will replay at reopen); only
        // the gauge must stop counting this store's records.
        sub_gauge(&self.metrics, self.journal.depth());
    }
}

impl StorageBackend for FileStore {
    fn size(&self) -> u64 {
        self.size
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> PvfsResult<()> {
        self.check_live()?;
        // Clamp like SparseStore: bytes past u64::MAX are permanent
        // holes, and `offset + pos` must never wrap.
        let addressable = u64::MAX - offset;
        let buf = if (buf.len() as u64) > addressable {
            let (head, tail) = buf.split_at_mut(addressable as usize);
            tail.fill(0);
            head
        } else {
            buf
        };
        // Bytes at/past the logical size are holes; don't ask the OS
        // (pread rejects offsets past i64::MAX outright).
        if offset >= self.size {
            buf.fill(0);
            return Ok(());
        }
        let readable = (self.size - offset).min(buf.len() as u64) as usize;
        let (buf, hole) = buf.split_at_mut(readable);
        hole.fill(0);
        let mut pos = 0usize;
        while pos < buf.len() {
            match self.data.read_at(&mut buf[pos..], offset + pos as u64) {
                // Past EOF: the rest of the request is a hole.
                Ok(0) => {
                    buf[pos..].fill(0);
                    break;
                }
                Ok(n) => pos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(storage_err("read data file", &self.data_path, e)),
            }
        }
        Ok(())
    }

    fn write_batch(&mut self, runs: &[(u64, &[u8])]) -> PvfsResult<()> {
        self.check_live()?;
        // Clamp each run at the edge of the address space (mirrors
        // SparseStore: dropped, never wrapped) and drop empties.
        let owned: Vec<(u64, Vec<u8>)> = runs
            .iter()
            .map(|(offset, data)| {
                let addressable = u64::MAX - offset;
                let data = if (data.len() as u64) > addressable {
                    &data[..addressable as usize]
                } else {
                    data
                };
                (*offset, data.to_vec())
            })
            .filter(|(_, data)| !data.is_empty())
            .collect();
        if owned.is_empty() {
            return Ok(());
        }
        let record = self.journal.make_write_batch(owned);
        if self.crash == Some(CrashPoint::TornJournal) {
            // Power cut mid-append: half the intent record reaches the
            // journal. The batch never committed.
            let keep = record.encode().len() / 2;
            self.journal
                .append_torn(&record, keep)
                .map_err(|e| storage_err("append journal", &self.data_path, e))?;
            self.wedged = true;
            return Err(PvfsError::Storage(format!(
                "injected crash: torn journal append on {}",
                self.data_path.display()
            )));
        }
        let appended = self
            .journal
            .append(&record)
            .map_err(|e| storage_err("append journal", &self.data_path, e))?;
        self.metrics.journal_appends.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .journal_bytes
            .fetch_add(appended, Ordering::Relaxed);
        self.metrics.journal_depth.fetch_add(1, Ordering::Relaxed);
        let synced = self.sync_journal_per_policy()?;
        let JournalRecord::WriteBatch { runs: owned, .. } = &record else {
            unreachable!("just built a write batch");
        };
        for (i, (offset, data)) in owned.iter().enumerate() {
            if self.crash == Some(CrashPoint::AfterCommit { applied: i }) {
                // Power cut mid-apply: the intent committed, the data
                // file holds a prefix. Replay finishes the batch.
                let t = Instant::now();
                self.journal
                    .sync()
                    .map_err(|e| storage_err("fsync journal", &self.data_path, e))?;
                self.metrics.record_fsync(t.elapsed());
                self.wedged = true;
                return Err(PvfsError::Storage(format!(
                    "injected crash: power loss after {i} of {} runs on {}",
                    owned.len(),
                    self.data_path.display()
                )));
            }
            self.data
                .write_all_at(data, *offset)
                .map_err(|e| storage_err("write data file", &self.data_path, e))?;
            self.size = self.size.max(offset + data.len() as u64);
        }
        if synced {
            // The journal covers everything up to here.
            self.durable = self.size;
        }
        if self.journal.depth() >= JOURNAL_CHECKPOINT_RECORDS
            || self.journal.bytes() >= JOURNAL_CHECKPOINT_BYTES
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    fn truncate(&mut self, size: u64) -> PvfsResult<()> {
        self.check_live()?;
        if size >= self.size {
            return Ok(());
        }
        // Journaled: without this, replaying an older write record
        // would resurrect bytes past the new tail.
        let record = self.journal.make_truncate(size);
        let appended = self
            .journal
            .append(&record)
            .map_err(|e| storage_err("append journal", &self.data_path, e))?;
        self.metrics.journal_appends.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .journal_bytes
            .fetch_add(appended, Ordering::Relaxed);
        self.metrics.journal_depth.fetch_add(1, Ordering::Relaxed);
        self.sync_journal_per_policy()?;
        self.data
            .set_len(size)
            .map_err(|e| storage_err("truncate data file", &self.data_path, e))?;
        self.size = size;
        self.durable = self.durable.min(size);
        Ok(())
    }

    fn sync(&mut self) -> PvfsResult<u64> {
        self.check_live()?;
        self.checkpoint()?;
        Ok(self.durable)
    }

    fn resident_bytes(&self) -> u64 {
        // All content lives in the kernel page cache / on disk; the
        // store itself buffers nothing.
        0
    }

    fn durable_bytes(&self) -> u64 {
        self.durable
    }

    fn journal_depth(&self) -> u64 {
        self.journal.depth()
    }

    fn inject_crash(&mut self, point: CrashPoint) {
        self.crash = Some(point);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;

    fn open(dir: &Path, sync: SyncPolicy) -> (FileStore, Arc<StorageMetrics>) {
        let metrics = Arc::new(StorageMetrics::default());
        let store = FileStore::open(dir, 1, sync, metrics.clone()).unwrap();
        (store, metrics)
    }

    #[test]
    fn write_read_roundtrip_and_persistence() {
        let dir = ScratchDir::new("fs-roundtrip");
        let (mut s, _) = open(dir.path(), SyncPolicy::Always);
        s.write_batch(&[(10, b"hello"), (100, b"world")]).unwrap();
        assert_eq!(s.read_vec(10, 5).unwrap(), b"hello");
        assert_eq!(s.read_vec(100, 5).unwrap(), b"world");
        assert_eq!(s.size(), 105);
        // Holes read as zero.
        assert_eq!(s.read_vec(50, 4).unwrap(), vec![0u8; 4]);
        drop(s);
        let (s2, _) = open(dir.path(), SyncPolicy::Always);
        assert_eq!(s2.size(), 105);
        assert_eq!(s2.read_vec(10, 5).unwrap(), b"hello");
    }

    #[test]
    fn reads_past_eof_zero_fill() {
        let dir = ScratchDir::new("fs-eof");
        let (mut s, _) = open(dir.path(), SyncPolicy::Never);
        s.write_batch(&[(0, b"edge")]).unwrap();
        assert_eq!(s.read_vec(2, 8).unwrap(), b"ge\0\0\0\0\0\0");
        assert_eq!(s.read_vec(1 << 30, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn read_at_the_edge_of_the_address_space_does_not_wrap() {
        // Mirrors the SparseStore clamp test: offsets near u64::MAX are
        // permanent holes, never a wraparound to offset 0.
        let dir = ScratchDir::new("fs-clamp");
        let (mut s, _) = open(dir.path(), SyncPolicy::Never);
        s.write_batch(&[(0, b"low")]).unwrap();
        assert_eq!(s.read_vec(u64::MAX - 2, 8).unwrap(), vec![0u8; 8]);
        assert_eq!(s.read_vec(u64::MAX, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn journaled_truncate_survives_replay_without_stale_tail_bytes() {
        // The satellite hazard: the journal holds write records past
        // the truncated tail. Replay must apply them in order and end
        // at the truncated size — reads past it return zeros, not the
        // journal's stale bytes.
        let dir = ScratchDir::new("fs-trunc-replay");
        let (mut s, _) = open(dir.path(), SyncPolicy::Never);
        s.write_batch(&[(0, &[7u8; 10])]).unwrap();
        s.write_batch(&[(100, &[9u8; 50])]).unwrap();
        s.truncate(10).unwrap();
        // Drop without checkpoint: the journal still holds all three
        // records and will replay at reopen.
        drop(s);
        let (s2, m) = open(dir.path(), SyncPolicy::Never);
        assert_eq!(m.journal_replays.load(Ordering::Relaxed), 3);
        assert_eq!(s2.size(), 10);
        assert_eq!(s2.read_vec(0, 10).unwrap(), vec![7u8; 10]);
        assert_eq!(s2.read_vec(100, 50).unwrap(), vec![0u8; 50]);
        assert_eq!(s2.read_vec(10, 10).unwrap(), vec![0u8; 10]);
    }

    #[test]
    fn torn_journal_append_loses_the_whole_batch() {
        let dir = ScratchDir::new("fs-torn");
        let (mut s, _) = open(dir.path(), SyncPolicy::Always);
        s.write_batch(&[(0, &[1u8; 64])]).unwrap();
        s.inject_crash(CrashPoint::TornJournal);
        let err = s
            .write_batch(&[(0, &[2u8; 32]), (64, &[2u8; 32])])
            .unwrap_err();
        assert!(matches!(err, PvfsError::Storage(_)));
        // Wedged: everything fails until "restart".
        assert!(s.read_vec(0, 1).is_err());
        drop(s);
        let (s2, _) = open(dir.path(), SyncPolicy::Always);
        // None of the torn batch is visible; the committed one is.
        assert_eq!(s2.read_vec(0, 64).unwrap(), vec![1u8; 64]);
        assert_eq!(s2.size(), 64);
    }

    #[test]
    fn crash_after_commit_replays_the_whole_batch() {
        let dir = ScratchDir::new("fs-aftercommit");
        let (mut s, _) = open(dir.path(), SyncPolicy::Always);
        s.write_batch(&[(0, &[1u8; 64])]).unwrap();
        s.inject_crash(CrashPoint::AfterCommit { applied: 1 });
        let err = s
            .write_batch(&[(0, &[2u8; 16]), (32, &[3u8; 16]), (64, &[4u8; 16])])
            .unwrap_err();
        assert!(matches!(err, PvfsError::Storage(_)));
        drop(s);
        let (s2, m) = open(dir.path(), SyncPolicy::Always);
        assert!(m.journal_replays.load(Ordering::Relaxed) >= 1);
        // The whole batch is visible — never a prefix.
        assert_eq!(s2.read_vec(0, 16).unwrap(), vec![2u8; 16]);
        assert_eq!(s2.read_vec(32, 16).unwrap(), vec![3u8; 16]);
        assert_eq!(s2.read_vec(64, 16).unwrap(), vec![4u8; 16]);
        assert_eq!(s2.size(), 80);
    }

    #[test]
    fn sync_barrier_checkpoints_and_reports_durable_bytes() {
        let dir = ScratchDir::new("fs-sync");
        let (mut s, m) = open(dir.path(), SyncPolicy::Never);
        s.write_batch(&[(0, &[5u8; 100])]).unwrap();
        assert_eq!(s.journal_depth(), 1);
        assert_eq!(m.journal_depth.load(Ordering::Relaxed), 1);
        let durable = s.sync().unwrap();
        assert_eq!(durable, 100);
        assert_eq!(s.durable_bytes(), 100);
        assert_eq!(s.journal_depth(), 0);
        assert_eq!(m.journal_depth.load(Ordering::Relaxed), 0);
        assert_eq!(m.flushes.load(Ordering::Relaxed), 1);
        assert!(m.fsyncs.load(Ordering::Relaxed) >= 2);
        assert!(m.fsync_time.count() >= 2);
    }

    #[test]
    fn always_policy_makes_every_batch_durable_at_return() {
        let dir = ScratchDir::new("fs-always");
        let (mut s, m) = open(dir.path(), SyncPolicy::Always);
        s.write_batch(&[(0, &[1u8; 10])]).unwrap();
        assert_eq!(s.durable_bytes(), 10);
        s.write_batch(&[(10, &[2u8; 10])]).unwrap();
        assert_eq!(s.durable_bytes(), 20);
        assert!(m.fsyncs.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn zero_interval_group_commit_syncs_every_batch() {
        let dir = ScratchDir::new("fs-interval");
        let (mut s, m) = open(dir.path(), SyncPolicy::Interval(std::time::Duration::ZERO));
        s.write_batch(&[(0, &[1u8; 10])]).unwrap();
        assert_eq!(s.durable_bytes(), 10);
        assert!(m.fsyncs.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn checkpoint_threshold_bounds_journal_depth() {
        let dir = ScratchDir::new("fs-threshold");
        let (mut s, m) = open(dir.path(), SyncPolicy::Never);
        for i in 0..(JOURNAL_CHECKPOINT_RECORDS + 10) {
            s.write_batch(&[(i * 8, &[i as u8; 8])]).unwrap();
        }
        assert!(s.journal_depth() < JOURNAL_CHECKPOINT_RECORDS);
        assert!(m.flushes.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn fresh_create_fsyncs_parent_dir_and_reopen_does_not() {
        let dir = ScratchDir::new("fs-dirsync");
        let (s, m) = open(dir.path(), SyncPolicy::Never);
        assert_eq!(
            m.fsyncs.load(Ordering::Relaxed),
            1,
            "a fresh create must fsync the parent directory"
        );
        drop(s);
        let metrics2 = Arc::new(StorageMetrics::default());
        let s2 = FileStore::open(dir.path(), 1, SyncPolicy::Never, metrics2.clone()).unwrap();
        assert_eq!(
            metrics2.fsyncs.load(Ordering::Relaxed),
            0,
            "reopening existing files pays no directory fsync"
        );
        drop(s2);
    }

    #[test]
    fn crash_on_the_first_ever_write_still_replays_after_reopen() {
        // Regression for the create-durability gap: the very first
        // write against a brand-new store commits to the journal and
        // crashes mid-apply. Recovery depends on the journal's
        // directory entry having been made durable at create time.
        let dir = ScratchDir::new("fs-dirsync-crash");
        let (mut s, _) = open(dir.path(), SyncPolicy::Always);
        s.inject_crash(CrashPoint::AfterCommit { applied: 0 });
        let err = s.write_batch(&[(5, &[3u8; 20])]).unwrap_err();
        assert!(matches!(err, PvfsError::Storage(_)));
        drop(s);
        let (s2, m2) = open(dir.path(), SyncPolicy::Always);
        assert!(m2.journal_replays.load(Ordering::Relaxed) >= 1);
        assert_eq!(s2.read_vec(5, 20).unwrap(), vec![3u8; 20]);
        assert_eq!(s2.size(), 25);
    }

    #[test]
    fn empty_batches_are_noops() {
        let dir = ScratchDir::new("fs-empty");
        let (mut s, m) = open(dir.path(), SyncPolicy::Always);
        s.write_batch(&[]).unwrap();
        s.write_batch(&[(100, b"")]).unwrap();
        assert_eq!(s.size(), 0);
        assert_eq!(m.journal_appends.load(Ordering::Relaxed), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::scratch::ScratchDir;
    use crate::SparseStore;
    use proptest::prelude::*;

    proptest! {
        /// Backend equivalence (store level): random write batches and
        /// truncates applied to both backends produce identical reads,
        /// sizes, and sane resident/durable accounting.
        #[test]
        fn file_store_matches_sparse_store(
            batches in proptest::collection::vec(
                proptest::collection::vec(
                    (0u64..200_000, proptest::collection::vec(any::<u8>(), 1..256)),
                    1..6,
                ),
                1..12,
            ),
            // Values past 150_000 mean "no truncate" — the shimmed
            // proptest has no Option strategy.
            cut_raw in 0u64..300_000,
        ) {
            let cut = (cut_raw < 150_000).then_some(cut_raw);
            let dir = ScratchDir::new("fs-equiv");
            let metrics = Arc::new(StorageMetrics::default());
            let mut file =
                FileStore::open(dir.path(), 1, SyncPolicy::Never, metrics).unwrap();
            let mut mem = SparseStore::new();
            for batch in &batches {
                let runs: Vec<(u64, &[u8])> =
                    batch.iter().map(|(o, d)| (*o, d.as_slice())).collect();
                StorageBackend::write_batch(&mut file, &runs).unwrap();
                StorageBackend::write_batch(&mut mem, &runs).unwrap();
            }
            if let Some(cut) = cut {
                StorageBackend::truncate(&mut file, cut).unwrap();
                StorageBackend::truncate(&mut mem, cut).unwrap();
            }
            prop_assert_eq!(StorageBackend::size(&file), mem.size());
            for probe in [0u64, 777, 65_535, 131_072, 199_990] {
                prop_assert_eq!(
                    StorageBackend::read_vec(&file, probe, 400).unwrap(),
                    mem.read_vec(probe, 400)
                );
            }
            // Accounting: memory is resident and never durable; the
            // file backend buffers nothing and is fully durable after a
            // sync barrier.
            prop_assert_eq!(StorageBackend::durable_bytes(&mem), 0);
            prop_assert_eq!(StorageBackend::resident_bytes(&file), 0);
            let durable = StorageBackend::sync(&mut file).unwrap();
            prop_assert_eq!(durable, mem.size());
            prop_assert_eq!(StorageBackend::durable_bytes(&file), mem.size());
            prop_assert_eq!(StorageBackend::journal_depth(&file), 0);
        }

        /// Persistence: whatever the batches built, a reopen (journal
        /// replay included) serves the same bytes.
        #[test]
        fn reopen_preserves_content(
            batches in proptest::collection::vec(
                proptest::collection::vec(
                    (0u64..50_000, proptest::collection::vec(any::<u8>(), 1..128)),
                    1..4,
                ),
                1..8,
            ),
        ) {
            let dir = ScratchDir::new("fs-reopen");
            let metrics = Arc::new(StorageMetrics::default());
            let mut file =
                FileStore::open(dir.path(), 1, SyncPolicy::Never, metrics.clone()).unwrap();
            let mut mem = SparseStore::new();
            for batch in &batches {
                let runs: Vec<(u64, &[u8])> =
                    batch.iter().map(|(o, d)| (*o, d.as_slice())).collect();
                StorageBackend::write_batch(&mut file, &runs).unwrap();
                StorageBackend::write_batch(&mut mem, &runs).unwrap();
            }
            drop(file);
            let file = FileStore::open(dir.path(), 1, SyncPolicy::Never, metrics).unwrap();
            prop_assert_eq!(StorageBackend::size(&file), mem.size());
            for probe in [0u64, 4_096, 49_990] {
                prop_assert_eq!(
                    StorageBackend::read_vec(&file, probe, 256).unwrap(),
                    mem.read_vec(probe, 256)
                );
            }
        }
    }
}
