//! Self-cleaning scratch directories for storage tests.
//!
//! The container has no `tempfile` crate, so durability tests (here and
//! in the server/net/client crates) use this tiny RAII guard: a unique
//! directory under the system temp dir, removed recursively on drop.
//! CI's durability job asserts no `pvfs-*` scratch directories survive
//! `cargo test` — a leaked directory is a failed Drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A uniquely named scratch directory, deleted (recursively) on drop.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
}

impl ScratchDir {
    /// Create `TMPDIR/pvfs-<tag>-<pid>-<n>`.
    pub fn new(tag: &str) -> ScratchDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("pvfs-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create scratch dir");
        ScratchDir { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_unique_and_cleaned() {
        let a = ScratchDir::new("unit");
        let b = ScratchDir::new("unit");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        std::fs::write(a.path().join("x"), b"leftover").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "drop must remove the tree");
    }
}
