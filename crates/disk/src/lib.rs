//! Simulated local storage under each PVFS I/O daemon.
//!
//! PVFS is "built on the local file system, which allows the Linux buffer
//! cache to reduce the cost of individual local disk operations on the
//! I/O servers" (§2). Each I/O daemon in this reproduction therefore owns
//! one [`LocalFile`] per open handle, which combines:
//!
//! * [`SparseStore`] — the functional byte content (chunked, sparse,
//!   zero-filled holes), playing the role of platter + page contents;
//! * [`BufferCache`] — an LRU block cache *residency model*: it tracks
//!   which blocks would be memory-resident and which accesses would go
//!   to disk, without duplicating the data;
//! * [`DiskModel`] — a seek + rotational + transfer cost model for the
//!   accesses that miss the cache (calibrated to the paper's 9 GB
//!   Quantum Atlas IV SCSI disks).
//!
//! Reads and writes return a [`CostReport`] that the discrete-event
//! simulator converts to virtual time; the live threaded cluster simply
//! ignores the report.
//!
//! The byte content itself sits behind the [`StorageBackend`] seam:
//! [`SparseStore`] is the volatile in-memory backend, and [`FileStore`]
//! is the durable one — a real local file per handle plus a write-ahead
//! intent journal ([`journal`]) that makes noncontiguous list writes
//! all-or-nothing across a crash (`PVFS_STORAGE=file:<dir>`,
//! `PVFS_SYNC=never|interval:<ms>|always`).

pub mod backend;
pub mod cache;
pub mod filestore;
pub mod journal;
pub mod localfile;
pub mod model;
pub mod scratch;
pub mod store;

pub use backend::{CrashPoint, StorageBackend, StorageConfig, StorageMetrics, SyncPolicy};
pub use cache::{BufferCache, CacheConfig, CacheOutcome, CachePolicy};
pub use filestore::FileStore;
pub use journal::{Journal, JournalRecord};
pub use localfile::{CostReport, LocalFile};
pub use model::DiskModel;
pub use scratch::ScratchDir;
pub use store::SparseStore;
