//! Sparse in-memory byte store.
//!
//! Holds the functional content of one I/O daemon's local file. Storage
//! is chunked so that a 1 GiB logical file striped across 8 servers
//! costs only the chunks actually written; unwritten holes read back as
//! zeros, like a sparse Unix file.

use crate::backend::StorageBackend;
use pvfs_types::PvfsResult;
use std::collections::BTreeMap;

/// Chunk granularity. 64 KiB balances per-chunk overhead against
/// allocation waste for scattered small writes.
pub const CHUNK_SIZE: usize = 64 * 1024;

/// A sparse, growable byte store addressed by `u64` offsets.
#[derive(Debug, Default, Clone)]
pub struct SparseStore {
    chunks: BTreeMap<u64, Box<[u8; CHUNK_SIZE]>>,
    /// One past the highest byte ever written.
    size: u64,
}

impl SparseStore {
    /// An empty store.
    pub fn new() -> SparseStore {
        SparseStore::default()
    }

    /// One past the highest byte ever written (the local file size).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of chunks currently materialized (for memory accounting).
    pub fn resident_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Resident memory in bytes.
    pub fn resident_bytes(&self) -> u64 {
        (self.chunks.len() * CHUNK_SIZE) as u64
    }

    /// Read `buf.len()` bytes starting at `offset`. Holes and bytes past
    /// the end read as zero — including bytes past `u64::MAX`, which are
    /// unaddressable and therefore permanent holes.
    pub fn read_at(&self, offset: u64, buf: &mut [u8]) {
        // Clamp before the chunk math: `offset + pos` must not wrap, or
        // a read near u64::MAX would alias chunk 0.
        let addressable = u64::MAX - offset;
        let buf = if (buf.len() as u64) > addressable {
            let (head, tail) = buf.split_at_mut(addressable as usize);
            tail.fill(0);
            head
        } else {
            buf
        };
        let mut pos = 0usize;
        while pos < buf.len() {
            let abs = offset + pos as u64;
            let chunk_idx = abs / CHUNK_SIZE as u64;
            let within = (abs % CHUNK_SIZE as u64) as usize;
            let n = (CHUNK_SIZE - within).min(buf.len() - pos);
            match self.chunks.get(&chunk_idx) {
                Some(chunk) => buf[pos..pos + n].copy_from_slice(&chunk[within..within + n]),
                None => buf[pos..pos + n].fill(0),
            }
            pos += n;
        }
    }

    /// Convenience: read `len` bytes at `offset` into a fresh vector.
    pub fn read_vec(&self, offset: u64, len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        self.read_at(offset, &mut buf);
        buf
    }

    /// Write `data` at `offset`, materializing chunks as needed and
    /// growing the file size. The store's address space ends at
    /// `u64::MAX - 1` (`size` is one past the highest byte, and must
    /// itself fit in a `u64`); bytes that would land past it are
    /// dropped rather than wrapped around to offset 0.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) {
        let addressable = u64::MAX - offset;
        let data = if (data.len() as u64) > addressable {
            &data[..addressable as usize]
        } else {
            data
        };
        if data.is_empty() {
            return;
        }
        let mut pos = 0usize;
        while pos < data.len() {
            let abs = offset + pos as u64;
            let chunk_idx = abs / CHUNK_SIZE as u64;
            let within = (abs % CHUNK_SIZE as u64) as usize;
            let n = (CHUNK_SIZE - within).min(data.len() - pos);
            let chunk = self
                .chunks
                .entry(chunk_idx)
                .or_insert_with(|| Box::new([0u8; CHUNK_SIZE]));
            chunk[within..within + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
        self.size = self.size.max(offset + data.len() as u64);
    }

    /// Truncate to `size` bytes, dropping whole chunks past the end and
    /// zeroing the partial tail chunk.
    pub fn truncate(&mut self, size: u64) {
        if size >= self.size {
            return;
        }
        let keep_full = size / CHUNK_SIZE as u64;
        let within = (size % CHUNK_SIZE as u64) as usize;
        let cut_from = if within == 0 {
            keep_full
        } else {
            keep_full + 1
        };
        self.chunks.retain(|&idx, _| idx < cut_from);
        if within != 0 {
            if let Some(chunk) = self.chunks.get_mut(&keep_full) {
                chunk[within..].fill(0);
            }
        }
        self.size = size;
    }
}

/// The memory side of the storage-engine seam: applies batches in
/// order, cannot fail, and promises nothing across a crash.
impl StorageBackend for SparseStore {
    fn size(&self) -> u64 {
        SparseStore::size(self)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> PvfsResult<()> {
        SparseStore::read_at(self, offset, buf);
        Ok(())
    }

    fn write_batch(&mut self, runs: &[(u64, &[u8])]) -> PvfsResult<()> {
        for (offset, data) in runs {
            self.write_at(*offset, data);
        }
        Ok(())
    }

    fn truncate(&mut self, size: u64) -> PvfsResult<()> {
        SparseStore::truncate(self, size);
        Ok(())
    }

    fn sync(&mut self) -> PvfsResult<u64> {
        // Nothing survives a crash: a barrier on memory is a no-op.
        Ok(0)
    }

    fn resident_bytes(&self) -> u64 {
        SparseStore::resident_bytes(self)
    }

    fn durable_bytes(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_reads_zero() {
        let s = SparseStore::new();
        assert_eq!(s.size(), 0);
        assert_eq!(s.read_vec(0, 8), vec![0u8; 8]);
        assert_eq!(s.read_vec(1 << 40, 4), vec![0u8; 4]);
    }

    #[test]
    fn write_then_read_back() {
        let mut s = SparseStore::new();
        s.write_at(10, b"hello");
        assert_eq!(s.read_vec(10, 5), b"hello");
        assert_eq!(s.size(), 15);
        // Surrounding bytes are zero.
        assert_eq!(s.read_vec(8, 9), b"\0\0hello\0\0");
    }

    #[test]
    fn write_spanning_chunk_boundary() {
        let mut s = SparseStore::new();
        let off = CHUNK_SIZE as u64 - 3;
        s.write_at(off, b"abcdef");
        assert_eq!(s.read_vec(off, 6), b"abcdef");
        assert_eq!(s.resident_chunks(), 2);
    }

    #[test]
    fn sparse_writes_only_materialize_touched_chunks() {
        let mut s = SparseStore::new();
        s.write_at(0, b"x");
        s.write_at(100 * CHUNK_SIZE as u64, b"y");
        assert_eq!(s.resident_chunks(), 2);
        assert_eq!(s.size(), 100 * CHUNK_SIZE as u64 + 1);
        // The hole between reads as zero.
        assert_eq!(s.read_vec(50 * CHUNK_SIZE as u64, 4), vec![0u8; 4]);
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let mut s = SparseStore::new();
        s.write_at(0, b"aaaaaa");
        s.write_at(2, b"bb");
        assert_eq!(s.read_vec(0, 6), b"aabbaa");
        assert_eq!(s.size(), 6);
    }

    #[test]
    fn empty_write_is_noop() {
        let mut s = SparseStore::new();
        s.write_at(100, b"");
        assert_eq!(s.size(), 0);
        assert_eq!(s.resident_chunks(), 0);
    }

    #[test]
    fn truncate_drops_tail() {
        let mut s = SparseStore::new();
        s.write_at(0, &vec![7u8; 3 * CHUNK_SIZE]);
        s.truncate(CHUNK_SIZE as u64 + 10);
        assert_eq!(s.size(), CHUNK_SIZE as u64 + 10);
        assert_eq!(s.resident_chunks(), 2);
        // Tail of the partial chunk was zeroed.
        assert_eq!(s.read_vec(CHUNK_SIZE as u64 + 10, 4), vec![0u8; 4]);
        assert_eq!(s.read_vec(CHUNK_SIZE as u64 + 8, 2), vec![7u8; 2]);
        // Growing truncate is a no-op.
        s.truncate(1 << 30);
        assert_eq!(s.size(), CHUNK_SIZE as u64 + 10);
    }

    #[test]
    fn truncate_to_zero() {
        let mut s = SparseStore::new();
        s.write_at(0, b"data");
        s.truncate(0);
        assert_eq!(s.size(), 0);
        assert_eq!(s.resident_chunks(), 0);
        assert_eq!(s.read_vec(0, 4), vec![0u8; 4]);
    }

    #[test]
    fn resident_bytes_accounting() {
        let mut s = SparseStore::new();
        s.write_at(0, b"x");
        assert_eq!(s.resident_bytes(), CHUNK_SIZE as u64);
    }

    #[test]
    fn read_at_the_edge_of_the_address_space_does_not_wrap() {
        let s = SparseStore::new();
        // Previously `offset + pos` overflowed here: panic in debug,
        // wraparound to chunk 0 in release.
        assert_eq!(s.read_vec(u64::MAX - 2, 8), vec![0u8; 8]);
        assert_eq!(s.read_vec(u64::MAX, 4), vec![0u8; 4]);
    }

    #[test]
    fn write_at_the_edge_of_the_address_space_clamps_not_wraps() {
        let mut s = SparseStore::new();
        s.write_at(0, b"low");
        // Only the 4 addressable bytes land; the tail is dropped, not
        // wrapped around onto offset 0.
        s.write_at(u64::MAX - 4, b"ABCDEFGH");
        assert_eq!(s.size(), u64::MAX);
        assert_eq!(s.read_vec(u64::MAX - 4, 4), b"ABCD");
        assert_eq!(s.read_vec(0, 3), b"low");
        // A write starting past the last writable offset is a no-op.
        s.write_at(u64::MAX, b"Z");
        assert_eq!(s.size(), u64::MAX);
    }

    #[test]
    fn reads_past_the_tail_return_zeros_not_stale_bytes() {
        // Same guarantee the durable backend makes after journal
        // replay: the bytes past the logical size are holes, even when
        // the chunk that used to hold them is still resident.
        let mut s = SparseStore::new();
        s.write_at(0, &[3u8; 100]);
        s.truncate(40);
        assert_eq!(s.size(), 40);
        assert_eq!(s.read_vec(40, 60), vec![0u8; 60]);
        assert_eq!(s.read_vec(30, 20), [vec![3u8; 10], vec![0u8; 10]].concat());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The store behaves exactly like a flat zero-initialized array.
        #[test]
        fn matches_flat_array_oracle(
            ops in proptest::collection::vec(
                (0u64..200_000, proptest::collection::vec(any::<u8>(), 1..512)),
                1..40,
            )
        ) {
            let mut store = SparseStore::new();
            let mut oracle = vec![0u8; 300_000];
            let mut size = 0u64;
            for (off, data) in &ops {
                store.write_at(*off, data);
                oracle[*off as usize..*off as usize + data.len()].copy_from_slice(data);
                size = size.max(off + data.len() as u64);
            }
            prop_assert_eq!(store.size(), size);
            // Probe a few windows.
            for probe in [0u64, 1000, 65_535, 131_072, 199_999] {
                let got = store.read_vec(probe, 600);
                let mut want = vec![0u8; 600];
                let upto = (probe as usize + 600).min(oracle.len());
                if (probe as usize) < oracle.len() {
                    want[..upto - probe as usize]
                        .copy_from_slice(&oracle[probe as usize..upto]);
                }
                prop_assert_eq!(got, want);
            }
        }

        #[test]
        fn truncate_matches_oracle(
            len in 1usize..100_000,
            cut in 0u64..120_000,
        ) {
            let mut store = SparseStore::new();
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            store.write_at(0, &data);
            store.truncate(cut);
            let expect_size = cut.min(len as u64);
            prop_assert_eq!(store.size(), expect_size);
            let got = store.read_vec(0, len + 16);
            for (i, b) in got.iter().enumerate() {
                let want = if (i as u64) < expect_size { (i % 251) as u8 } else { 0 };
                prop_assert_eq!(*b, want, "byte {}", i);
            }
        }
    }
}
