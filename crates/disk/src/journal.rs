//! Write-ahead intent journal for the durable file backend.
//!
//! Before a [`FileStore`](crate::FileStore) touches its data file, the
//! whole write batch (every local run of one noncontiguous list write)
//! is appended to the journal as a single intent record whose trailing
//! checksum doubles as the commit marker. Recovery reads the journal
//! front to back, replays every record whose checksum verifies, and
//! discards the torn tail: a record the crash cut short was never
//! committed, so its batch simply never happened — all-or-nothing
//! without undo logging.
//!
//! # Record format (little-endian)
//!
//! ```text
//! magic "PVJR" (4) | kind (1) | seq (8) | body | fnv1a64 (8)
//!
//! kind 1 = write batch:  count (4) | count × (offset 8, len 8) | payloads
//! kind 2 = truncate:     size (8)
//! ```
//!
//! The checksum is FNV-1a 64 over everything before it (magic
//! included). Truncates are journaled too: replay applies records in
//! order, so a truncate followed by new writes recovers exactly —
//! without it, replaying an older write record could resurrect
//! truncated bytes past the logical tail.
//!
//! After replay (or whenever the journal grows past the group-commit
//! thresholds) the store *checkpoints*: fsync the data file, then
//! truncate the journal to zero. The journal is the durability
//! authority between checkpoints; the data file is authoritative after.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// Leading magic of every journal record.
pub const RECORD_MAGIC: [u8; 4] = *b"PVJR";

const KIND_WRITE_BATCH: u8 = 1;
const KIND_TRUNCATE: u8 = 2;

/// One committed intent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// Apply every `(offset, payload)` run to the data file.
    WriteBatch {
        /// Monotonic record sequence number.
        seq: u64,
        /// The batch's runs, in application order.
        runs: Vec<(u64, Vec<u8>)>,
    },
    /// Truncate the data file to `size` bytes.
    Truncate {
        /// Monotonic record sequence number.
        seq: u64,
        /// New file size.
        size: u64,
    },
}

impl JournalRecord {
    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            JournalRecord::WriteBatch { seq, .. } => *seq,
            JournalRecord::Truncate { seq, .. } => *seq,
        }
    }

    /// Serialize with the trailing commit checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&RECORD_MAGIC);
        match self {
            JournalRecord::WriteBatch { seq, runs } => {
                buf.push(KIND_WRITE_BATCH);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&(runs.len() as u32).to_le_bytes());
                for (offset, payload) in runs {
                    buf.extend_from_slice(&offset.to_le_bytes());
                    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
                }
                for (_, payload) in runs {
                    buf.extend_from_slice(payload);
                }
            }
            JournalRecord::Truncate { seq, size } => {
                buf.push(KIND_TRUNCATE);
                buf.extend_from_slice(&seq.to_le_bytes());
                buf.extend_from_slice(&size.to_le_bytes());
            }
        }
        let sum = fnv1a64(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }
}

/// FNV-1a 64 — tiny, dependency-free, and plenty to distinguish a torn
/// record from a committed one.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Parse one record from `buf[pos..]`. `Ok(None)` means the tail is
/// torn or corrupt (recovery stops there); `Ok(Some(...))` yields the
/// record and the position just past it.
fn parse_record(buf: &[u8], pos: usize) -> Option<(JournalRecord, usize)> {
    let rest = &buf[pos..];
    // magic + kind + seq
    if rest.len() < 13 || rest[..4] != RECORD_MAGIC {
        return None;
    }
    let kind = rest[4];
    let seq = u64::from_le_bytes(rest[5..13].try_into().unwrap());
    let (record, body_end) = match kind {
        KIND_WRITE_BATCH => {
            if rest.len() < 17 {
                return None;
            }
            let count = u32::from_le_bytes(rest[13..17].try_into().unwrap()) as usize;
            // Bound the header against what's actually on disk before
            // allocating anything.
            let runs_hdr = count.checked_mul(16)?;
            let mut at = 17usize.checked_add(runs_hdr)?;
            if rest.len() < at {
                return None;
            }
            let mut runs = Vec::with_capacity(count);
            for i in 0..count {
                let h = 17 + i * 16;
                let offset = u64::from_le_bytes(rest[h..h + 8].try_into().unwrap());
                let len = u64::from_le_bytes(rest[h + 8..h + 16].try_into().unwrap());
                if len > rest.len() as u64 {
                    return None;
                }
                runs.push((offset, len as usize));
            }
            let mut out = Vec::with_capacity(count);
            for (offset, len) in runs {
                let end = at.checked_add(len)?;
                if rest.len() < end {
                    return None;
                }
                out.push((offset, rest[at..end].to_vec()));
                at = end;
            }
            (JournalRecord::WriteBatch { seq, runs: out }, at)
        }
        KIND_TRUNCATE => {
            if rest.len() < 21 {
                return None;
            }
            let size = u64::from_le_bytes(rest[13..21].try_into().unwrap());
            (JournalRecord::Truncate { seq, size }, 21)
        }
        _ => return None,
    };
    let sum_end = body_end.checked_add(8)?;
    if rest.len() < sum_end {
        return None;
    }
    let want = u64::from_le_bytes(rest[body_end..sum_end].try_into().unwrap());
    if fnv1a64(&rest[..body_end]) != want {
        return None;
    }
    Some((record, pos + sum_end))
}

/// The on-disk journal of one [`FileStore`](crate::FileStore).
#[derive(Debug)]
pub struct Journal {
    file: File,
    /// Records committed since the last checkpoint.
    depth: u64,
    /// Bytes appended since the last checkpoint.
    bytes: u64,
    /// Next record sequence number.
    next_seq: u64,
}

impl Journal {
    /// Open (or create) the journal at `path`, returning it together
    /// with every committed record found — the valid prefix; a torn or
    /// corrupt tail is dropped and will be overwritten by the
    /// post-replay checkpoint.
    pub fn open(path: &Path) -> io::Result<(Journal, Vec<JournalRecord>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        while let Some((record, next)) = parse_record(&raw, pos) {
            records.push(record);
            pos = next;
        }
        let next_seq = records.last().map(|r| r.seq() + 1).unwrap_or(0);
        Ok((
            Journal {
                file,
                depth: records.len() as u64,
                bytes: pos as u64,
                next_seq,
            },
            records,
        ))
    }

    /// Build the next record for a write batch (consuming the sequence
    /// number).
    pub fn make_write_batch(&mut self, runs: Vec<(u64, Vec<u8>)>) -> JournalRecord {
        let seq = self.next_seq;
        self.next_seq += 1;
        JournalRecord::WriteBatch { seq, runs }
    }

    /// Build the next record for a truncate.
    pub fn make_truncate(&mut self, size: u64) -> JournalRecord {
        let seq = self.next_seq;
        self.next_seq += 1;
        JournalRecord::Truncate { seq, size }
    }

    /// Append one committed record; returns the bytes written.
    pub fn append(&mut self, record: &JournalRecord) -> io::Result<u64> {
        let encoded = record.encode();
        self.file.write_all(&encoded)?;
        self.depth += 1;
        self.bytes += encoded.len() as u64;
        Ok(encoded.len() as u64)
    }

    /// Crash injection: append only the first `keep` bytes of the
    /// record — the torn tail a power cut mid-append leaves behind.
    pub fn append_torn(&mut self, record: &JournalRecord, keep: usize) -> io::Result<()> {
        let encoded = record.encode();
        let keep = keep.min(encoded.len().saturating_sub(1));
        self.file.write_all(&encoded[..keep])?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Fsync the journal file (the commit barrier).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Drop every record: called once the data file itself has been
    /// fsynced, making the journal's contents redundant.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.depth = 0;
        self.bytes = 0;
        Ok(())
    }

    /// Records committed since the last checkpoint.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Bytes appended since the last checkpoint.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scratch::ScratchDir;

    #[test]
    fn roundtrip_records_through_a_file() {
        let dir = ScratchDir::new("journal-roundtrip");
        let path = dir.path().join("j");
        let (mut j, replay) = Journal::open(&path).unwrap();
        assert!(replay.is_empty());
        let a = j.make_write_batch(vec![(0, b"abc".to_vec()), (100, b"defg".to_vec())]);
        let b = j.make_truncate(50);
        let c = j.make_write_batch(vec![(7, b"xy".to_vec())]);
        for r in [&a, &b, &c] {
            j.append(r).unwrap();
        }
        assert_eq!(j.depth(), 3);
        j.sync().unwrap();
        drop(j);
        let (j2, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay, vec![a, b, c]);
        assert_eq!(j2.depth(), 3);
    }

    #[test]
    fn torn_tail_is_discarded_not_replayed() {
        let dir = ScratchDir::new("journal-torn");
        let path = dir.path().join("j");
        let (mut j, _) = Journal::open(&path).unwrap();
        let committed = j.make_write_batch(vec![(0, b"committed".to_vec())]);
        j.append(&committed).unwrap();
        let torn = j.make_write_batch(vec![(64, vec![0xAA; 128])]);
        j.append_torn(&torn, 40).unwrap();
        drop(j);
        let (j2, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay, vec![committed]);
        // The reopened journal only counts the valid prefix.
        assert_eq!(j2.depth(), 1);
    }

    #[test]
    fn corrupt_byte_invalidates_only_the_tail() {
        let dir = ScratchDir::new("journal-corrupt");
        let path = dir.path().join("j");
        let (mut j, _) = Journal::open(&path).unwrap();
        let a = j.make_write_batch(vec![(0, vec![1; 32])]);
        let b = j.make_write_batch(vec![(32, vec![2; 32])]);
        j.append(&a).unwrap();
        j.append(&b).unwrap();
        drop(j);
        // Flip one payload byte inside record b.
        let mut raw = std::fs::read(&path).unwrap();
        let a_len = a.encode().len();
        raw[a_len + 30] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay, vec![a]);
    }

    #[test]
    fn checkpoint_empties_the_journal() {
        let dir = ScratchDir::new("journal-checkpoint");
        let path = dir.path().join("j");
        let (mut j, _) = Journal::open(&path).unwrap();
        let r = j.make_write_batch(vec![(0, vec![9; 8])]);
        j.append(&r).unwrap();
        j.checkpoint().unwrap();
        assert_eq!(j.depth(), 0);
        assert_eq!(j.bytes(), 0);
        drop(j);
        let (_, replay) = Journal::open(&path).unwrap();
        assert!(replay.is_empty());
        // Sequence numbers keep rising across a checkpoint within one
        // session; after reopen they restart — both are fine because
        // the journal is empty at every checkpoint boundary.
    }

    #[test]
    fn garbage_file_replays_nothing() {
        let dir = ScratchDir::new("journal-garbage");
        let path = dir.path().join("j");
        std::fs::write(&path, b"this is not a journal at all").unwrap();
        let (j, replay) = Journal::open(&path).unwrap();
        assert!(replay.is_empty());
        assert_eq!(j.depth(), 0);
    }

    #[test]
    fn absurd_counts_do_not_allocate_or_panic() {
        let dir = ScratchDir::new("journal-absurd");
        let path = dir.path().join("j");
        // A record header claiming u32::MAX runs with no body.
        let mut raw = Vec::new();
        raw.extend_from_slice(&RECORD_MAGIC);
        raw.push(1u8);
        raw.extend_from_slice(&0u64.to_le_bytes());
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&path, &raw).unwrap();
        let (_, replay) = Journal::open(&path).unwrap();
        assert!(replay.is_empty());
    }
}
