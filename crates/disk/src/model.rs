//! Disk timing model.
//!
//! Calibrated to the paper's I/O nodes: one 9 GB Quantum Atlas IV SCSI
//! disk per server (7200 RPM class, ~25 MB/s media rate, ~7 ms average
//! seek). The model distinguishes sequential from random access by
//! remembering where the head last finished: an access that starts where
//! the previous one ended pays no positioning cost.
//!
//! All times are virtual nanoseconds; the model is pure arithmetic and
//! deterministic.

/// Timing parameters for one disk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average seek time for a random access (ns).
    pub avg_seek_ns: u64,
    /// Average rotational latency (ns) — half a revolution.
    pub avg_rotation_ns: u64,
    /// Media transfer rate (bytes/second).
    pub transfer_bps: u64,
    /// Fixed per-operation overhead (controller, SCSI command) in ns.
    pub per_op_ns: u64,
    /// Fraction of full positioning cost charged to each background
    /// write-back block (the elevator batches them), in percent.
    pub writeback_positioning_pct: u64,
}

impl DiskModel {
    /// Quantum Atlas IV-class parameters.
    pub fn paper_default() -> DiskModel {
        DiskModel {
            avg_seek_ns: 7_000_000,     // 7 ms
            avg_rotation_ns: 4_000_000, // ~half a 7200 RPM revolution
            transfer_bps: 25_000_000,   // 25 MB/s media rate
            per_op_ns: 100_000,         // 0.1 ms controller overhead
            writeback_positioning_pct: 10,
        }
    }

    /// A free disk — useful for isolating network/CPU effects in
    /// sensitivity experiments.
    pub fn free() -> DiskModel {
        DiskModel {
            avg_seek_ns: 0,
            avg_rotation_ns: 0,
            transfer_bps: u64::MAX,
            per_op_ns: 0,
            writeback_positioning_pct: 0,
        }
    }

    /// Pure transfer time for `bytes` at the media rate.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        if self.transfer_bps == u64::MAX {
            return 0;
        }
        // bytes / (bytes per ns) = bytes * 1e9 / bps, computed without
        // overflow for realistic sizes via u128.
        ((bytes as u128 * 1_000_000_000) / self.transfer_bps as u128) as u64
    }

    /// Cost of one foreground access of `bytes` bytes that misses the
    /// cache. `sequential` means the head is already positioned.
    pub fn access_ns(&self, bytes: u64, sequential: bool) -> u64 {
        let position = if sequential {
            0
        } else {
            self.avg_seek_ns + self.avg_rotation_ns
        };
        self.per_op_ns + position + self.transfer_ns(bytes)
    }

    /// Cost of writing back `blocks` dirty blocks of `block_size` bytes
    /// each (batched by the elevator, so positioning is discounted).
    pub fn writeback_ns(&self, blocks: u64, block_size: u64) -> u64 {
        if blocks == 0 {
            return 0;
        }
        let positioning =
            (self.avg_seek_ns + self.avg_rotation_ns) * self.writeback_positioning_pct / 100;
        blocks * (positioning + self.transfer_ns(block_size))
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel::paper_default()
    }
}

/// Tracks head position to classify accesses as sequential or random.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeadTracker {
    last_end: Option<u64>,
}

impl HeadTracker {
    /// New tracker with unknown head position (first access is random).
    pub fn new() -> HeadTracker {
        HeadTracker::default()
    }

    /// Record an access and report whether it was sequential with the
    /// previous one.
    pub fn observe(&mut self, offset: u64, len: u64) -> bool {
        let sequential = self.last_end == Some(offset);
        self.last_end = Some(offset + len);
        sequential
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        let m = DiskModel::paper_default();
        assert_eq!(m.transfer_ns(25_000_000), 1_000_000_000); // 25 MB in 1 s
        assert_eq!(m.transfer_ns(0), 0);
        assert_eq!(m.transfer_ns(2 * 25_000_000), 2 * m.transfer_ns(25_000_000));
    }

    #[test]
    fn random_access_pays_positioning() {
        let m = DiskModel::paper_default();
        let random = m.access_ns(4096, false);
        let seq = m.access_ns(4096, true);
        assert_eq!(random - seq, m.avg_seek_ns + m.avg_rotation_ns);
        assert!(seq >= m.per_op_ns);
    }

    #[test]
    fn free_disk_costs_nothing() {
        let m = DiskModel::free();
        assert_eq!(m.access_ns(1 << 30, false), 0);
        assert_eq!(m.writeback_ns(1000, 4096), 0);
    }

    #[test]
    fn writeback_discounts_positioning() {
        let m = DiskModel::paper_default();
        let per_block = m.writeback_ns(1, 4096);
        let foreground = m.access_ns(4096, false);
        assert!(per_block < foreground);
        assert_eq!(m.writeback_ns(10, 4096), 10 * per_block);
        assert_eq!(m.writeback_ns(0, 4096), 0);
    }

    #[test]
    fn head_tracker_detects_sequential_runs() {
        let mut h = HeadTracker::new();
        assert!(!h.observe(0, 100)); // first access: random
        assert!(h.observe(100, 50)); // continues
        assert!(h.observe(150, 50));
        assert!(!h.observe(500, 10)); // jump
        assert!(h.observe(510, 10));
        assert!(!h.observe(0, 10)); // jump back
    }

    #[test]
    fn large_transfers_do_not_overflow() {
        let m = DiskModel::paper_default();
        let t = m.transfer_ns(1 << 40); // 1 TiB
        assert!(t > 0);
    }
}
