//! The storage-engine seam: one trait, two backends.
//!
//! Every I/O daemon stores the bytes of each local file behind a
//! [`StorageBackend`]: the in-memory [`SparseStore`](crate::SparseStore)
//! (fast, volatile — the simulator's backend) or the durable
//! [`FileStore`](crate::FileStore) (a real local file plus a write-ahead
//! intent journal). The daemon picks a backend per
//! [`StorageConfig`], normally parsed from `PVFS_STORAGE`:
//!
//! ```text
//! PVFS_STORAGE=mem            # default: in-memory SparseStore
//! PVFS_STORAGE=file:<dir>     # FileStore under <dir>/iod<N>/
//! PVFS_SYNC=never|interval:<ms>|always   # journal fsync policy
//! ```
//!
//! The trait is deliberately small: positional reads, *batched*
//! all-or-nothing writes (one noncontiguous list write = one batch = one
//! journal record), truncate, and an explicit durability barrier
//! ([`StorageBackend::sync`]). Accounting methods expose what each
//! backend can promise: resident bytes (memory) and durable bytes
//! (recoverable after a crash).

use pvfs_types::{PvfsError, PvfsResult, SharedHistogram};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How eagerly the [`FileStore`](crate::FileStore) journal reaches
/// stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never fsync on the write path; durability only at explicit
    /// [`StorageBackend::sync`] barriers (and checkpoints).
    Never,
    /// Group commit: fsync the journal at most once per interval; a
    /// batch may be lost to a crash within the window.
    Interval(Duration),
    /// Fsync the journal before every write acknowledges — a committed
    /// batch is durable when the RPC reply leaves the daemon.
    Always,
}

impl SyncPolicy {
    /// Parse the `PVFS_SYNC` spelling: `never`, `interval:<ms>`,
    /// `always`.
    pub fn parse(s: &str) -> PvfsResult<SyncPolicy> {
        match s {
            "never" => Ok(SyncPolicy::Never),
            "always" => Ok(SyncPolicy::Always),
            other => match other.strip_prefix("interval:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(|ms| SyncPolicy::Interval(Duration::from_millis(ms)))
                    .map_err(|_| {
                        PvfsError::config(format!("PVFS_SYNC interval {ms:?} is not milliseconds"))
                    }),
                None => Err(PvfsError::config(format!(
                    "PVFS_SYNC={other:?} is not a sync policy (never|interval:<ms>|always)"
                ))),
            },
        }
    }

    /// The policy selected by `PVFS_SYNC` (default: `interval:100`, a
    /// group-commit window wide enough to batch bursts without letting
    /// more than 100 ms of writes ride on a crash).
    pub fn from_env() -> PvfsResult<SyncPolicy> {
        match std::env::var("PVFS_SYNC") {
            Ok(v) => SyncPolicy::parse(&v),
            Err(_) => Ok(SyncPolicy::Interval(Duration::from_millis(100))),
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::Never => write!(f, "never"),
            SyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_millis()),
            SyncPolicy::Always => write!(f, "always"),
        }
    }
}

/// Which storage backend a daemon gives each of its local files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageConfig {
    /// In-memory [`SparseStore`](crate::SparseStore) (the default).
    Mem,
    /// Durable [`FileStore`](crate::FileStore): one data file + journal
    /// per handle under `dir`.
    File {
        /// The daemon's data directory.
        dir: PathBuf,
        /// Journal fsync policy.
        sync: SyncPolicy,
    },
}

impl StorageConfig {
    /// The backend selected by `PVFS_STORAGE` (+ `PVFS_SYNC` for the
    /// file backend). Default: [`StorageConfig::Mem`].
    pub fn from_env() -> PvfsResult<StorageConfig> {
        match std::env::var("PVFS_STORAGE") {
            Err(_) => Ok(StorageConfig::Mem),
            Ok(v) if v == "mem" => Ok(StorageConfig::Mem),
            Ok(v) => match v.strip_prefix("file:") {
                Some(dir) if !dir.is_empty() => Ok(StorageConfig::File {
                    dir: PathBuf::from(dir),
                    sync: SyncPolicy::from_env()?,
                }),
                _ => Err(PvfsError::config(format!(
                    "PVFS_STORAGE={v:?} is not a backend (mem|file:<dir>)"
                ))),
            },
        }
    }

    /// This configuration scoped to one daemon: the file backend gets a
    /// per-daemon subdirectory (`<dir>/iod<N>`) so daemons sharing a
    /// base directory never collide on handle numbers.
    pub fn for_daemon(&self, daemon: u32) -> StorageConfig {
        match self {
            StorageConfig::Mem => StorageConfig::Mem,
            StorageConfig::File { dir, sync } => StorageConfig::File {
                dir: dir.join(format!("iod{daemon}")),
                sync: *sync,
            },
        }
    }

    /// Is this the durable file backend?
    pub fn is_file(&self) -> bool {
        matches!(self, StorageConfig::File { .. })
    }
}

impl std::fmt::Display for StorageConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageConfig::Mem => write!(f, "mem"),
            StorageConfig::File { dir, sync } => {
                write!(f, "file:{} (sync={sync})", dir.display())
            }
        }
    }
}

/// Storage-engine counters, shared (`Arc`) between a daemon and every
/// [`FileStore`](crate::FileStore) it opens, surfaced through
/// `StatsSnapshot`/`GetStats`. The memory backend leaves them all zero.
#[derive(Debug, Default)]
pub struct StorageMetrics {
    /// Journal records appended (one per committed write batch or
    /// truncate).
    pub journal_appends: AtomicU64,
    /// Bytes appended to journals.
    pub journal_bytes: AtomicU64,
    /// Journal records replayed at recovery (daemon restart).
    pub journal_replays: AtomicU64,
    /// Durability flushes: checkpoints + explicit sync barriers.
    pub flushes: AtomicU64,
    /// `fsync` syscalls issued (journal + data files).
    pub fsyncs: AtomicU64,
    /// Journal records committed but not yet checkpointed (a gauge, not
    /// a counter — excluded from reset).
    pub journal_depth: AtomicU64,
    /// Latency of each `fsync` syscall.
    pub fsync_time: SharedHistogram,
}

impl StorageMetrics {
    /// Record one fsync of `took` wall time. Also feeds the serving
    /// daemon's trace sink, if one is active on this thread, so traced
    /// requests show their `journal:fsync` hop.
    pub fn record_fsync(&self, took: Duration) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.fsync_time.record_duration(took);
        pvfs_types::trace::sink_add("journal:fsync", took);
    }

    /// Zero the counters and the fsync histogram. The journal-depth
    /// gauge survives: it describes on-disk state, not traffic.
    pub fn reset(&self) {
        self.journal_appends.store(0, Ordering::Relaxed);
        self.journal_bytes.store(0, Ordering::Relaxed);
        self.journal_replays.store(0, Ordering::Relaxed);
        self.flushes.store(0, Ordering::Relaxed);
        self.fsyncs.store(0, Ordering::Relaxed);
        self.fsync_time.reset();
    }
}

/// Crash injection for the durable backend: where a
/// [`FileStore`](crate::FileStore) "loses power" mid-write. After the
/// injected crash the store is wedged (every subsequent operation fails
/// with [`PvfsError::Storage`]) and its on-disk state is exactly what a
/// SIGKILL at that instant would leave — the recovery tests reopen the
/// data directory and assert all-or-nothing semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Power loss mid-journal-append: only a prefix of the intent
    /// record reaches the journal. The batch was never committed, so
    /// recovery must discard the torn record — none of the batch's
    /// regions may be visible after restart.
    TornJournal,
    /// Power loss after the intent record committed (appended and
    /// synced) but after only `applied` of the batch's runs reached the
    /// data file. Recovery must replay the journal and complete the
    /// batch — all of its regions must be visible after restart.
    AfterCommit {
        /// Data-file runs applied before the lights went out.
        applied: usize,
    },
}

/// What one I/O daemon's per-handle store must provide.
///
/// Implementations: [`SparseStore`](crate::SparseStore) (memory) and
/// [`FileStore`](crate::FileStore) (durable). The write path is batch
/// oriented: the daemon collects every local run of a request and
/// commits them as one batch, so a ⌈n/64⌉-region list write is
/// all-or-nothing across a crash on the durable backend.
pub trait StorageBackend: std::fmt::Debug + Send {
    /// One past the highest byte written (the local file size).
    fn size(&self) -> u64;

    /// Read `buf.len()` bytes at `offset`; holes and bytes past EOF
    /// read as zeros.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> PvfsResult<()>;

    /// Apply a batch of `(offset, data)` runs atomically with respect
    /// to crashes: after recovery either every run is visible or none
    /// is. In-memory backends apply in order and cannot fail.
    fn write_batch(&mut self, runs: &[(u64, &[u8])]) -> PvfsResult<()>;

    /// Truncate to `size` bytes (journaled on durable backends — replay
    /// must not resurrect truncated bytes).
    fn truncate(&mut self, size: u64) -> PvfsResult<()>;

    /// Durability barrier: make everything written so far crash-proof.
    /// Returns the bytes now durable (0 for memory backends).
    fn sync(&mut self) -> PvfsResult<u64>;

    /// Bytes of buffered state held in memory.
    fn resident_bytes(&self) -> u64;

    /// Bytes guaranteed to survive a crash right now (0 for memory
    /// backends; the data-file size covered by the last barrier or
    /// synced journal for durable ones).
    fn durable_bytes(&self) -> u64;

    /// Journal records committed but not yet checkpointed (0 when there
    /// is no journal).
    fn journal_depth(&self) -> u64 {
        0
    }

    /// Arm a crash at the given point (test fault injection; no-op for
    /// backends with no crash surface).
    fn inject_crash(&mut self, _point: CrashPoint) {}

    /// Convenience: read `len` bytes at `offset` into a fresh vector.
    fn read_vec(&self, offset: u64, len: usize) -> PvfsResult<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read_at(offset, &mut buf)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_policy_parses_all_spellings() {
        assert_eq!(SyncPolicy::parse("never").unwrap(), SyncPolicy::Never);
        assert_eq!(SyncPolicy::parse("always").unwrap(), SyncPolicy::Always);
        assert_eq!(
            SyncPolicy::parse("interval:250").unwrap(),
            SyncPolicy::Interval(Duration::from_millis(250))
        );
        assert!(SyncPolicy::parse("sometimes").is_err());
        assert!(SyncPolicy::parse("interval:fast").is_err());
    }

    #[test]
    fn sync_policy_displays_roundtrip() {
        for s in ["never", "always", "interval:42"] {
            assert_eq!(SyncPolicy::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn storage_config_scopes_per_daemon() {
        let base = StorageConfig::File {
            dir: PathBuf::from("/data/pvfs"),
            sync: SyncPolicy::Always,
        };
        match base.for_daemon(3) {
            StorageConfig::File { dir, sync } => {
                assert_eq!(dir, PathBuf::from("/data/pvfs/iod3"));
                assert_eq!(sync, SyncPolicy::Always);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(StorageConfig::Mem.for_daemon(3), StorageConfig::Mem);
    }

    #[test]
    fn metrics_reset_keeps_the_depth_gauge() {
        let m = StorageMetrics::default();
        m.journal_appends.store(5, Ordering::Relaxed);
        m.journal_depth.store(3, Ordering::Relaxed);
        m.record_fsync(Duration::from_micros(10));
        m.reset();
        assert_eq!(m.journal_appends.load(Ordering::Relaxed), 0);
        assert_eq!(m.fsyncs.load(Ordering::Relaxed), 0);
        assert_eq!(m.fsync_time.count(), 0);
        assert_eq!(m.journal_depth.load(Ordering::Relaxed), 3);
    }
}
