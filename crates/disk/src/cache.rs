//! Buffer-cache residency model.
//!
//! Models the Linux buffer cache on a 2002-era I/O node: a fixed number
//! of fixed-size blocks managed with LRU replacement and write-back
//! dirty handling. The cache does **not** hold data — content lives in
//! the [`crate::SparseStore`] — it only answers the costing question
//! *"which blocks of this access would have hit memory, and which would
//! have gone to disk?"*, and tracks the dirty write-back traffic that
//! evictions generate.

use std::collections::HashMap;

/// Replacement policy for the buffer cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// Evict the least-recently-used block (exact LRU by access tick).
    #[default]
    Lru,
    /// CLOCK second-chance: a hand sweeps the resident ring, clearing
    /// reference bits and evicting the first unreferenced block — what
    /// the 2.4 kernel actually approximated.
    Clock,
}

/// Cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache block size in bytes (Linux page-cache granularity).
    pub block_size: u64,
    /// Number of resident blocks. `capacity_blocks * block_size` is the
    /// cache size in bytes.
    pub capacity_blocks: usize,
    /// If true, writes allocate cache blocks (write-allocate); if false,
    /// writes go straight to disk.
    pub write_allocate: bool,
    /// Replacement policy.
    pub policy: CachePolicy,
    /// Blocks to read ahead after a sequential read miss (0 disables).
    /// The 2.4 kernel read ahead up to 128 KiB; the paper's experiments
    /// run warm, so the calibrated default keeps this off and the
    /// ablation bench shows its effect on cold sequential reads.
    pub readahead_blocks: u64,
}

impl CacheConfig {
    /// 2002-era I/O node defaults: 4 KiB blocks, 128 MiB of cache
    /// (the paper's nodes had 512 MB RAM; a quarter for the buffer cache
    /// is a reasonable steady state).
    pub fn paper_default() -> CacheConfig {
        CacheConfig {
            block_size: 4096,
            capacity_blocks: (128 * 1024 * 1024) / 4096,
            write_allocate: true,
            policy: CachePolicy::Lru,
            readahead_blocks: 0,
        }
    }

    /// A tiny cache for tests that want to force evictions.
    pub fn tiny(capacity_blocks: usize) -> CacheConfig {
        CacheConfig {
            block_size: 16,
            capacity_blocks,
            write_allocate: true,
            policy: CachePolicy::Lru,
            readahead_blocks: 0,
        }
    }

    /// The tiny test cache with CLOCK replacement.
    pub fn tiny_clock(capacity_blocks: usize) -> CacheConfig {
        CacheConfig {
            policy: CachePolicy::Clock,
            ..CacheConfig::tiny(capacity_blocks)
        }
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper_default()
    }
}

/// Outcome of pushing one access through the cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Blocks already resident.
    pub hit_blocks: u64,
    /// Blocks that had to come from disk (read misses) or be allocated
    /// (write misses).
    pub miss_blocks: u64,
    /// Dirty blocks evicted by this access — write-back disk traffic.
    pub writeback_blocks: u64,
}

impl CacheOutcome {
    /// Blocks touched in total.
    pub fn total_blocks(&self) -> u64 {
        self.hit_blocks + self.miss_blocks
    }

    /// Fold another outcome into this one.
    pub fn merge(&mut self, other: CacheOutcome) {
        self.hit_blocks += other.hit_blocks;
        self.miss_blocks += other.miss_blocks;
        self.writeback_blocks += other.writeback_blocks;
    }
}

/// LRU block cache with write-back dirty tracking.
///
/// LRU is implemented with a monotone access clock per block and a
/// min-scan eviction over a `HashMap`; eviction is rare relative to
/// access in the simulated workloads, and an O(n) scan on eviction keeps
/// the structure simple. For the figure-scale workloads the cache is
/// large (32 Ki blocks), so a heap-based variant is provided through the
/// same interface if profiles ever show this hot.
#[derive(Debug, Clone)]
pub struct BufferCache {
    config: CacheConfig,
    /// block index -> entry
    resident: HashMap<u64, Entry>,
    clock: u64,
    /// CLOCK policy: ring of resident block ids and the sweep hand.
    ring: Vec<u64>,
    hand: usize,
    /// Cumulative statistics.
    stats: CacheStats,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Last access tick (LRU) — also doubles as the CLOCK reference
    /// indicator through `referenced`.
    tick: u64,
    dirty: bool,
    referenced: bool,
    /// Position in `ring` (CLOCK only).
    ring_idx: usize,
}

/// Lifetime statistics for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total block hits.
    pub hits: u64,
    /// Total block misses.
    pub misses: u64,
    /// Total dirty blocks written back on eviction or flush.
    pub writebacks: u64,
}

impl BufferCache {
    /// A cache with the given configuration.
    pub fn new(config: CacheConfig) -> BufferCache {
        assert!(config.block_size > 0, "block size must be nonzero");
        assert!(config.capacity_blocks > 0, "capacity must be nonzero");
        BufferCache {
            config,
            resident: HashMap::new(),
            clock: 0,
            ring: Vec::new(),
            hand: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache runs with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Lifetime statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.resident.len()
    }

    /// Push an access of `len` bytes at `offset` through the cache and
    /// report hits/misses/writebacks.
    pub fn access(&mut self, offset: u64, len: u64, is_write: bool) -> CacheOutcome {
        let mut out = CacheOutcome::default();
        if len == 0 {
            return out;
        }
        let bs = self.config.block_size;
        let first = offset / bs;
        let last = (offset + len - 1) / bs;
        for block in first..=last {
            out.merge(self.touch(block, is_write));
        }
        out
    }

    /// Touch a single block.
    fn touch(&mut self, block: u64, is_write: bool) -> CacheOutcome {
        self.clock += 1;
        let tick = self.clock;
        let mut out = CacheOutcome::default();
        match self.resident.get_mut(&block) {
            Some(entry) => {
                entry.tick = tick;
                entry.referenced = true;
                entry.dirty |= is_write;
                out.hit_blocks += 1;
                self.stats.hits += 1;
            }
            None => {
                out.miss_blocks += 1;
                self.stats.misses += 1;
                if !is_write || self.config.write_allocate {
                    out.writeback_blocks += self.insert(block, is_write);
                }
            }
        }
        out
    }

    /// Mark a block resident and clean without counting a hit or miss —
    /// the read-ahead path. Returns write-backs caused by eviction.
    pub fn prefetch(&mut self, block: u64) -> u64 {
        if self.resident.contains_key(&block) {
            return 0;
        }
        self.insert(block, false)
    }

    /// Insert a block, evicting if full; returns write-backs.
    fn insert(&mut self, block: u64, dirty: bool) -> u64 {
        let mut writebacks = 0;
        if self.resident.len() >= self.config.capacity_blocks {
            writebacks = match self.config.policy {
                CachePolicy::Lru => self.evict_lru(),
                CachePolicy::Clock => self.evict_clock(),
            };
        }
        let ring_idx = match self.config.policy {
            CachePolicy::Clock => {
                self.ring.push(block);
                self.ring.len() - 1
            }
            CachePolicy::Lru => 0,
        };
        self.resident.insert(
            block,
            Entry {
                tick: self.clock,
                dirty,
                referenced: true,
                ring_idx,
            },
        );
        writebacks
    }

    /// Evict the least-recently-used block; returns 1 if it was dirty
    /// (a write-back), else 0.
    fn evict_lru(&mut self) -> u64 {
        let victim = self
            .resident
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(b, _)| *b);
        if let Some(b) = victim {
            let entry = self.resident.remove(&b).expect("victim resident");
            if entry.dirty {
                self.stats.writebacks += 1;
                return 1;
            }
        }
        0
    }

    /// CLOCK second-chance eviction.
    fn evict_clock(&mut self) -> u64 {
        debug_assert!(!self.ring.is_empty());
        loop {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let block = self.ring[self.hand];
            let entry = self.resident.get_mut(&block).expect("ring consistency");
            if entry.referenced {
                entry.referenced = false;
                self.hand += 1;
                continue;
            }
            // Evict: swap-remove from the ring, fix the moved entry.
            let dirty = entry.dirty;
            self.resident.remove(&block);
            self.ring.swap_remove(self.hand);
            if self.hand < self.ring.len() {
                let moved = self.ring[self.hand];
                self.resident
                    .get_mut(&moved)
                    .expect("ring consistency")
                    .ring_idx = self.hand;
            }
            if dirty {
                self.stats.writebacks += 1;
                return 1;
            }
            return 0;
        }
    }

    /// Write every dirty block back; returns the number written.
    pub fn flush(&mut self) -> u64 {
        let mut written = 0;
        for entry in self.resident.values_mut() {
            if entry.dirty {
                entry.dirty = false;
                written += 1;
            }
        }
        self.stats.writebacks += written;
        written
    }

    /// Drop everything (e.g. on file removal).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.ring.clear();
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(blocks: usize) -> BufferCache {
        BufferCache::new(CacheConfig::tiny(blocks)) // 16-byte blocks
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut c = cache(8);
        let first = c.access(0, 64, false); // 4 blocks
        assert_eq!(first.miss_blocks, 4);
        assert_eq!(first.hit_blocks, 0);
        let second = c.access(0, 64, false);
        assert_eq!(second.hit_blocks, 4);
        assert_eq!(second.miss_blocks, 0);
    }

    #[test]
    fn partial_block_access_touches_whole_block() {
        let mut c = cache(8);
        let out = c.access(17, 1, false); // inside block 1
        assert_eq!(out.total_blocks(), 1);
        let again = c.access(16, 16, false); // same block
        assert_eq!(again.hit_blocks, 1);
    }

    #[test]
    fn straddling_access_counts_both_blocks() {
        let mut c = cache(8);
        let out = c.access(15, 2, false); // blocks 0 and 1
        assert_eq!(out.miss_blocks, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = cache(2);
        c.access(0, 16, false); // block 0
        c.access(16, 16, false); // block 1
        c.access(0, 16, false); // touch block 0 again -> 1 is LRU
        c.access(32, 16, false); // block 2 evicts block 1
        assert_eq!(c.access(0, 16, false).hit_blocks, 1); // 0 still resident
        assert_eq!(c.access(16, 16, false).miss_blocks, 1); // 1 was evicted
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = cache(1);
        c.access(0, 16, true); // dirty block 0
        let out = c.access(16, 16, false); // evicts dirty block 0
        assert_eq!(out.writeback_blocks, 1);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = cache(1);
        c.access(0, 16, false);
        let out = c.access(16, 16, false);
        assert_eq!(out.writeback_blocks, 0);
    }

    #[test]
    fn write_marks_dirty_even_on_hit() {
        let mut c = cache(1);
        c.access(0, 16, false); // clean resident
        c.access(0, 16, true); // dirtied by hit
        let out = c.access(16, 16, false);
        assert_eq!(out.writeback_blocks, 1);
    }

    #[test]
    fn flush_writes_all_dirty_blocks_once() {
        let mut c = cache(8);
        c.access(0, 64, true); // 4 dirty blocks
        assert_eq!(c.flush(), 4);
        assert_eq!(c.flush(), 0); // now clean
    }

    #[test]
    fn no_write_allocate_bypasses_cache() {
        let mut c = BufferCache::new(CacheConfig {
            block_size: 16,
            capacity_blocks: 8,
            write_allocate: false,
            policy: CachePolicy::Lru,
            readahead_blocks: 0,
        });
        let out = c.access(0, 64, true);
        assert_eq!(out.miss_blocks, 4);
        assert_eq!(c.resident_blocks(), 0);
        // A later read still misses.
        assert_eq!(c.access(0, 64, false).miss_blocks, 4);
    }

    #[test]
    fn zero_length_access_is_free() {
        let mut c = cache(4);
        assert_eq!(c.access(100, 0, true), CacheOutcome::default());
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = cache(4);
        c.access(0, 16 * 100, false); // 100 blocks through a 4-block cache
        assert_eq!(c.resident_blocks(), 4);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = cache(8);
        c.access(0, 64, false);
        c.access(0, 64, false);
        let s = c.stats();
        assert_eq!(s.misses, 4);
        assert_eq!(s.hits, 4);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = cache(8);
        c.access(0, 64, true);
        c.clear();
        assert_eq!(c.resident_blocks(), 0);
        assert_eq!(c.access(0, 16, false).miss_blocks, 1);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut c = BufferCache::new(CacheConfig::tiny_clock(2));
        c.access(0, 16, false); // block 0
        c.access(16, 16, false); // block 1
        c.access(0, 16, false); // re-reference block 0
                                // Insert block 2: hand clears ref bits; block 1 was referenced
                                // on insert too, so the sweep clears 0 then 1, wraps, and
                                // evicts block 0 (now unreferenced)... unless 0's recent touch
                                // saved it. Either way, exactly one of {0, 1} is gone and the
                                // cache holds 2 blocks.
        c.access(32, 16, false);
        assert_eq!(c.resident_blocks(), 2);
        let hits_before = c.stats().hits;
        c.access(32, 16, false); // newest block must be resident
        assert_eq!(c.stats().hits, hits_before + 1);
    }

    #[test]
    fn clock_eviction_prefers_unreferenced() {
        let mut c = BufferCache::new(CacheConfig::tiny_clock(3));
        c.access(0, 16, false); // block 0
        c.access(16, 16, false); // block 1
        c.access(32, 16, false); // block 2
                                 // Sweep once to clear all reference bits.
        c.access(48, 16, false); // insert 3 evicts one of them
                                 // Keep re-touching block 3 and inserting: repeatedly touched
                                 // blocks survive.
        for i in 4..20u64 {
            c.access(48, 16, false); // keep block 3 referenced
            c.access(i * 16, 16, false);
        }
        let out = c.access(48, 16, false);
        assert_eq!(out.hit_blocks, 1, "hot block was evicted by CLOCK");
    }

    #[test]
    fn clock_capacity_respected_and_dirty_writebacks_counted() {
        let mut c = BufferCache::new(CacheConfig::tiny_clock(4));
        for i in 0..64u64 {
            c.access(i * 16, 16, true);
            assert!(c.resident_blocks() <= 4);
        }
        assert!(c.stats().writebacks > 0);
        c.clear();
        assert_eq!(c.resident_blocks(), 0);
        // Reusable after clear.
        c.access(0, 16, false);
        assert_eq!(c.resident_blocks(), 1);
    }

    #[test]
    fn prefetch_marks_resident_without_hit_miss_accounting() {
        let mut c = cache(8);
        let before = c.stats();
        assert_eq!(c.prefetch(5), 0);
        assert_eq!(c.stats().hits, before.hits);
        assert_eq!(c.stats().misses, before.misses);
        // The prefetched block now hits.
        let out = c.access(5 * 16, 16, false);
        assert_eq!(out.hit_blocks, 1);
        // Prefetching a resident block is a no-op.
        assert_eq!(c.prefetch(5), 0);
    }

    #[test]
    fn outcome_merge() {
        let mut a = CacheOutcome {
            hit_blocks: 1,
            miss_blocks: 2,
            writeback_blocks: 3,
        };
        a.merge(CacheOutcome {
            hit_blocks: 10,
            miss_blocks: 20,
            writeback_blocks: 30,
        });
        assert_eq!(a.hit_blocks, 11);
        assert_eq!(a.miss_blocks, 22);
        assert_eq!(a.writeback_blocks, 33);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn residency_never_exceeds_capacity(
            capacity in 1usize..32,
            ops in proptest::collection::vec((0u64..4096, 1u64..128, any::<bool>()), 1..200),
        ) {
            let mut c = BufferCache::new(CacheConfig::tiny(capacity));
            for (off, len, w) in ops {
                c.access(off, len, w);
                prop_assert!(c.resident_blocks() <= capacity);
            }
        }

        #[test]
        fn hits_plus_misses_equals_blocks_touched(
            ops in proptest::collection::vec((0u64..4096, 1u64..128, any::<bool>()), 1..100),
        ) {
            let mut c = BufferCache::new(CacheConfig::tiny(16));
            for (off, len, w) in ops {
                let bs = 16u64;
                let blocks = (off + len - 1) / bs - off / bs + 1;
                let out = c.access(off, len, w);
                prop_assert_eq!(out.total_blocks(), blocks);
            }
        }

        #[test]
        fn clock_residency_never_exceeds_capacity(
            capacity in 1usize..32,
            ops in proptest::collection::vec((0u64..4096, 1u64..128, any::<bool>()), 1..200),
        ) {
            let mut c = BufferCache::new(CacheConfig::tiny_clock(capacity));
            for (off, len, w) in ops {
                c.access(off, len, w);
                prop_assert!(c.resident_blocks() <= capacity);
            }
        }

        #[test]
        fn clock_second_pass_over_small_set_always_hits(
            offsets in proptest::collection::vec(0u64..64, 1..20),
        ) {
            let mut c = BufferCache::new(CacheConfig::tiny_clock(8));
            for &o in &offsets {
                c.access(o, 1, false);
            }
            for &o in &offsets {
                let out = c.access(o, 1, false);
                prop_assert_eq!(out.hit_blocks, 1);
            }
        }

        #[test]
        fn infinite_cache_never_writes_back(
            ops in proptest::collection::vec((0u64..4096, 1u64..128, any::<bool>()), 1..100),
        ) {
            let mut c = BufferCache::new(CacheConfig::tiny(100_000));
            for (off, len, w) in ops {
                let out = c.access(off, len, w);
                prop_assert_eq!(out.writeback_blocks, 0);
            }
        }

        #[test]
        fn second_pass_over_small_set_always_hits(
            offsets in proptest::collection::vec(0u64..64, 1..20),
        ) {
            // Working set of <= 4 distinct 16-byte blocks, cache of 8.
            let mut c = BufferCache::new(CacheConfig::tiny(8));
            for &o in &offsets {
                c.access(o, 1, false);
            }
            for &o in &offsets {
                let out = c.access(o, 1, false);
                prop_assert_eq!(out.hit_blocks, 1);
            }
        }
    }
}
