//! One I/O daemon's local file: content + cache residency + disk cost.

use crate::backend::{CrashPoint, StorageBackend};
use crate::cache::{BufferCache, CacheConfig, CacheOutcome};
use crate::model::{DiskModel, HeadTracker};
use crate::store::SparseStore;
use pvfs_types::PvfsResult;

/// Cost of one storage operation, reported alongside its functional
/// result. The discrete-event simulator turns `disk_ns` into virtual
/// time; the live cluster ignores it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Virtual nanoseconds spent on the disk (misses + write-backs).
    pub disk_ns: u64,
    /// Bytes read from the store.
    pub bytes_read: u64,
    /// Bytes written to the store.
    pub bytes_written: u64,
    /// Cache residency outcome.
    pub cache: CacheOutcome,
}

impl CostReport {
    /// Fold another report into this one.
    pub fn merge(&mut self, other: CostReport) {
        self.disk_ns += other.disk_ns;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.cache.merge(other.cache);
    }
}

/// A local file under one I/O daemon: a [`StorageBackend`] for the
/// bytes (memory or durable file+journal), an LRU buffer cache
/// residency model, and a disk timing model with head tracking.
#[derive(Debug)]
pub struct LocalFile {
    store: Box<dyn StorageBackend>,
    cache: BufferCache,
    model: DiskModel,
    head: HeadTracker,
    /// Mutating ops applied this daemon incarnation. Deliberately not
    /// persisted: a freshly restarted daemon answers 0, so anti-entropy
    /// scrub never mistakes it for the freshest copy.
    write_version: u64,
}

impl LocalFile {
    /// New empty memory-backed file with the given cache and disk
    /// parameters.
    pub fn new(cache_config: CacheConfig, model: DiskModel) -> LocalFile {
        LocalFile::with_backend(cache_config, model, Box::new(SparseStore::new()))
    }

    /// A file over an explicit backend (the durable
    /// [`FileStore`](crate::FileStore), a test double, ...).
    pub fn with_backend(
        cache_config: CacheConfig,
        model: DiskModel,
        store: Box<dyn StorageBackend>,
    ) -> LocalFile {
        LocalFile {
            store,
            cache: BufferCache::new(cache_config),
            model,
            head: HeadTracker::new(),
            write_version: 0,
        }
    }

    /// New empty memory-backed file with paper-default cache and disk.
    pub fn with_defaults() -> LocalFile {
        LocalFile::new(CacheConfig::paper_default(), DiskModel::paper_default())
    }

    /// Local file size (one past the highest byte written).
    pub fn size(&self) -> u64 {
        self.store.size()
    }

    /// The storage backend (accounting, crash injection, oracles).
    pub fn backend(&self) -> &dyn StorageBackend {
        self.store.as_ref()
    }

    /// Read `len` bytes at `offset` without touching the cache model or
    /// cost accounting — the verification-oracle path.
    pub fn peek_vec(&self, offset: u64, len: usize) -> Vec<u8> {
        self.store
            .read_vec(offset, len)
            .expect("oracle read failed")
    }

    /// Cache statistics.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// Read `len` bytes at `offset` (zero-filled past EOF), reporting
    /// cost.
    pub fn read_at(&mut self, offset: u64, len: usize) -> PvfsResult<(Vec<u8>, CostReport)> {
        let data = self.store.read_vec(offset, len)?;
        let report = self.charge_read(offset, len as u64);
        Ok((data, report))
    }

    /// Read into a caller-provided buffer.
    pub fn read_into(&mut self, offset: u64, buf: &mut [u8]) -> PvfsResult<CostReport> {
        self.store.read_at(offset, buf)?;
        Ok(self.charge_read(offset, buf.len() as u64))
    }

    /// Write `data` at `offset`, reporting cost.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) -> PvfsResult<CostReport> {
        self.write_batch(&[(offset, data)])
    }

    /// Apply a whole request's runs as one batch — all-or-nothing
    /// across a crash on durable backends (one journal record), plain
    /// in-order writes on memory.
    pub fn write_batch(&mut self, runs: &[(u64, &[u8])]) -> PvfsResult<CostReport> {
        let mut prev_size = self.store.size();
        self.store.write_batch(runs)?;
        self.write_version += 1;
        let mut report = CostReport::default();
        for (offset, data) in runs {
            report.merge(self.charge_write(*offset, data.len() as u64, prev_size));
            prev_size = prev_size.max(offset.saturating_add(data.len() as u64));
        }
        Ok(report)
    }

    fn charge_write(&mut self, offset: u64, len: u64, prev_size: u64) -> CostReport {
        if len == 0 {
            return CostReport::default();
        }
        let cache = self.cache.access(offset, len, true);
        let mut disk_ns = 0;
        // Write-allocate absorbs the data into cache; an unaligned
        // write into a block that already held data requires a
        // read-fill of that block. Fresh files (writes at/past the old
        // EOF block) never read-fill — pages are allocated zeroed.
        let bs = self.cache.config().block_size;
        let unaligned =
            !offset.is_multiple_of(bs) || !offset.saturating_add(len).is_multiple_of(bs);
        let block_start = (offset / bs) * bs;
        if unaligned && cache.miss_blocks > 0 && block_start < prev_size {
            let sequential = self.head.observe(offset, len);
            disk_ns += self.model.access_ns(bs.min(len), sequential);
        }
        if cache.writeback_blocks > 0 {
            disk_ns += self
                .model
                .writeback_ns(cache.writeback_blocks, self.cache.config().block_size);
        }
        CostReport {
            disk_ns,
            bytes_read: 0,
            bytes_written: len,
            cache,
        }
    }

    fn charge_read(&mut self, offset: u64, len: u64) -> CostReport {
        if len == 0 {
            return CostReport::default();
        }
        let mut cache = self.cache.access(offset, len, false);
        let mut disk_ns = 0;
        if cache.miss_blocks > 0 {
            // Foreground read of the missed bytes. Misses within one
            // access are contiguous enough to count as one positioned
            // run.
            let sequential = self.head.observe(offset, len);
            disk_ns += self.model.access_ns(
                cache.miss_blocks * self.cache.config().block_size,
                sequential,
            );
            // Sequential misses trigger read-ahead: the next blocks are
            // pulled in at pure transfer cost (the head is already
            // positioned), so the next sequential access hits.
            let ra = self.cache.config().readahead_blocks;
            if sequential && ra > 0 {
                let bs = self.cache.config().block_size;
                let next = (offset + len - 1) / bs + 1;
                for b in next..next + ra {
                    cache.writeback_blocks += self.cache.prefetch(b);
                }
                disk_ns += self.model.transfer_ns(ra * bs);
                // The head physically moved through the prefetched
                // range: the next miss past it is sequential.
                self.head
                    .observe(offset + len, (next + ra) * bs - (offset + len));
            }
        }
        if cache.writeback_blocks > 0 {
            disk_ns += self
                .model
                .writeback_ns(cache.writeback_blocks, self.cache.config().block_size);
        }
        CostReport {
            disk_ns,
            bytes_read: len,
            bytes_written: 0,
            cache,
        }
    }

    /// Flush all dirty blocks to disk, reporting the write-back cost.
    pub fn flush(&mut self) -> CostReport {
        let blocks = self.cache.flush();
        CostReport {
            disk_ns: self
                .model
                .writeback_ns(blocks, self.cache.config().block_size),
            ..CostReport::default()
        }
    }

    /// Durability barrier: flush the cache model (its write-back cost
    /// is the report) and fsync the backend. Returns the bytes now
    /// durable.
    pub fn sync(&mut self) -> PvfsResult<(u64, CostReport)> {
        let report = self.flush();
        let durable = self.store.sync()?;
        Ok((durable, report))
    }

    /// Truncate the file.
    pub fn truncate(&mut self, size: u64) -> PvfsResult<()> {
        self.store.truncate(size)?;
        self.write_version += 1;
        Ok(())
    }

    /// Mutating ops applied since this `LocalFile` was opened.
    pub fn write_version(&self) -> u64 {
        self.write_version
    }

    /// Anti-entropy digests: fnv1a64 over each `chunk`-byte piece of
    /// the local bytes `[i*chunk, min((i+1)*chunk, size))`, plus the
    /// in-memory write version. Reads go straight to the store (the
    /// authoritative bytes — the buffer cache is only a cost model), so
    /// digests never disturb cache residency or cost accounting.
    pub fn digest_chunks(&self, chunk: u64) -> PvfsResult<(u64, Vec<u64>)> {
        debug_assert!(chunk > 0, "digest chunk must be nonzero");
        let size = self.store.size();
        let n = size.div_ceil(chunk);
        let mut chunks = Vec::with_capacity(n as usize);
        for i in 0..n {
            let offset = i * chunk;
            let len = chunk.min(size - offset) as usize;
            let data = self.store.read_vec(offset, len)?;
            chunks.push(crate::journal::fnv1a64(&data));
        }
        Ok((self.write_version, chunks))
    }

    /// Arm a storage crash (test fault injection; no-op on memory).
    pub fn inject_crash(&mut self, point: CrashPoint) {
        self.store.inject_crash(point);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_file() -> LocalFile {
        LocalFile::new(CacheConfig::tiny(8), DiskModel::paper_default())
    }

    #[test]
    fn read_write_roundtrip() {
        let mut f = LocalFile::with_defaults();
        f.write_at(100, b"parallel virtual file system").unwrap();
        let (data, _) = f.read_at(100, 28).unwrap();
        assert_eq!(&data, b"parallel virtual file system");
        assert_eq!(f.size(), 128);
    }

    #[test]
    fn cold_read_costs_disk_time_warm_read_does_not() {
        let mut f = small_file();
        f.write_at(0, &[1u8; 64]).unwrap();
        let (_, warm) = f.read_at(0, 64).unwrap(); // resident from write-allocate
        assert_eq!(warm.disk_ns, 0);
        assert_eq!(warm.cache.hit_blocks, 4);
        // A never-touched range costs positioning + transfer.
        let (_, cold) = f.read_at(1024, 64).unwrap();
        assert!(cold.disk_ns > 0);
        assert_eq!(cold.cache.miss_blocks, 4);
    }

    #[test]
    fn aligned_write_is_absorbed_by_cache() {
        let mut f = small_file(); // 16-byte blocks
        let r = f.write_at(0, &[7u8; 32]).unwrap(); // aligned, 2 blocks
        assert_eq!(r.disk_ns, 0);
        assert_eq!(r.bytes_written, 32);
    }

    #[test]
    fn unaligned_write_to_fresh_file_is_free() {
        // Writes past the old EOF allocate zeroed pages — no read-fill,
        // regardless of alignment. This matters: the paper's write
        // benchmarks write fresh files, and their cost is modeled by
        // the server-side write path, not phantom disk reads.
        let mut f = small_file();
        let r = f.write_at(3, &[7u8; 10]).unwrap();
        assert_eq!(r.disk_ns, 0);
    }

    #[test]
    fn unaligned_overwrite_of_cold_existing_data_pays_read_fill() {
        let mut f = small_file();
        f.write_at(0, &[1u8; 128]).unwrap(); // materialize data
                                             // Evict everything by touching other blocks beyond capacity.
        for i in 0..16u64 {
            f.read_at(1024 + i * 16, 16).unwrap();
        }
        let r = f.write_at(3, &[7u8; 6]).unwrap(); // unaligned, block holds data
        assert!(r.disk_ns > 0);
    }

    #[test]
    fn eviction_of_dirty_blocks_charges_writeback() {
        let mut f = LocalFile::new(CacheConfig::tiny(2), DiskModel::paper_default());
        f.write_at(0, &[1u8; 16]).unwrap();
        f.write_at(16, &[1u8; 16]).unwrap();
        let r = f.write_at(32, &[1u8; 16]).unwrap(); // evicts a dirty block
        assert!(r.cache.writeback_blocks >= 1);
        assert!(r.disk_ns > 0);
    }

    #[test]
    fn flush_costs_proportional_to_dirty_blocks() {
        let mut f = small_file();
        f.write_at(0, &[1u8; 64]).unwrap(); // 4 dirty blocks
        let r1 = f.flush();
        assert!(r1.disk_ns > 0);
        let r2 = f.flush();
        assert_eq!(r2.disk_ns, 0);
    }

    #[test]
    fn zero_length_ops_are_free() {
        let mut f = small_file();
        assert_eq!(f.write_at(0, b"").unwrap(), CostReport::default());
        let (d, r) = f.read_at(0, 0).unwrap();
        assert!(d.is_empty());
        assert_eq!(r, CostReport::default());
    }

    #[test]
    fn read_into_matches_read_at() {
        let mut f = LocalFile::with_defaults();
        f.write_at(0, &[9u8; 100]).unwrap();
        let (a, _) = f.read_at(10, 50).unwrap();
        let mut b = vec![0u8; 50];
        f.read_into(10, &mut b).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cost_report_merge_accumulates() {
        let mut a = CostReport {
            disk_ns: 10,
            bytes_read: 1,
            bytes_written: 2,
            cache: CacheOutcome {
                hit_blocks: 1,
                miss_blocks: 1,
                writeback_blocks: 0,
            },
        };
        a.merge(CostReport {
            disk_ns: 5,
            bytes_read: 10,
            bytes_written: 20,
            cache: CacheOutcome {
                hit_blocks: 2,
                miss_blocks: 3,
                writeback_blocks: 4,
            },
        });
        assert_eq!(a.disk_ns, 15);
        assert_eq!(a.bytes_read, 11);
        assert_eq!(a.bytes_written, 22);
        assert_eq!(a.cache.hit_blocks, 3);
    }

    #[test]
    fn sequential_reads_cost_less_than_scattered() {
        // Same bytes, same cold cache: sequential walk vs random walk.
        let cold = || LocalFile::new(CacheConfig::tiny(4), DiskModel::paper_default());
        let mut seq = cold();
        let mut scattered = cold();
        let mut seq_ns = 0;
        let mut rnd_ns = 0;
        for i in 0..16u64 {
            seq_ns += seq.read_at(i * 16, 16).unwrap().1.disk_ns;
            // Jump around with a stride that defeats head tracking.
            rnd_ns += scattered
                .read_at(((i * 7) % 16) * 1024, 16)
                .unwrap()
                .1
                .disk_ns;
        }
        assert!(seq_ns < rnd_ns, "seq {seq_ns} vs random {rnd_ns}");
    }

    #[test]
    fn readahead_turns_sequential_cold_reads_into_hits() {
        let mut cfg = CacheConfig::tiny(64);
        cfg.readahead_blocks = 4;
        let mut f = LocalFile::new(cfg, DiskModel::paper_default());
        // First read misses and positions the head...
        let (_, r0) = f.read_at(0, 16).unwrap();
        assert_eq!(r0.cache.miss_blocks, 1);
        // ...the second sequential read misses but triggers read-ahead,
        // so the following sequential reads hit at zero disk cost.
        f.read_at(16, 16).unwrap();
        let (_, r2) = f.read_at(32, 16).unwrap();
        assert_eq!(r2.cache.hit_blocks, 1, "readahead should have prefetched");
        assert_eq!(r2.disk_ns, 0);
        let (_, r3) = f.read_at(48, 16).unwrap();
        assert_eq!(r3.cache.hit_blocks, 1);
    }

    #[test]
    fn no_readahead_on_random_misses() {
        let mut cfg = CacheConfig::tiny(64);
        cfg.readahead_blocks = 4;
        let mut f = LocalFile::new(cfg, DiskModel::paper_default());
        f.read_at(1000, 16).unwrap();
        let (_, r) = f.read_at(0, 16).unwrap(); // jump: random
        assert_eq!(r.cache.miss_blocks, 1);
        // A block near neither access was not prefetched.
        let (_, r2) = f.read_at(512, 16).unwrap();
        assert_eq!(r2.cache.miss_blocks, 1);
    }

    #[test]
    fn truncate_zeroes_tail() {
        let mut f = LocalFile::with_defaults();
        f.write_at(0, &[5u8; 100]).unwrap();
        f.truncate(50).unwrap();
        assert_eq!(f.size(), 50);
        let (d, _) = f.read_at(40, 20).unwrap();
        assert_eq!(&d[..10], &[5u8; 10]);
        assert_eq!(&d[10..], &[0u8; 10]);
    }

    #[test]
    fn write_batch_merges_per_run_costs() {
        let mut f = small_file();
        let r = f.write_batch(&[(0, &[1u8; 16]), (64, &[2u8; 32])]).unwrap();
        assert_eq!(r.bytes_written, 48);
        assert_eq!(f.size(), 96);
        assert_eq!(f.peek_vec(0, 16), vec![1u8; 16]);
        assert_eq!(f.peek_vec(64, 32), vec![2u8; 32]);
    }

    #[test]
    fn digest_chunks_cover_the_tail_and_track_writes() {
        let mut f = LocalFile::with_defaults();
        assert_eq!(f.write_version(), 0);
        assert_eq!(f.digest_chunks(16).unwrap(), (0, vec![]));
        f.write_at(0, &[1u8; 40]).unwrap();
        let (v, d) = f.digest_chunks(16).unwrap();
        assert_eq!(v, 1);
        assert_eq!(d.len(), 3); // 16 + 16 + 8-byte tail
                                // Same bytes, different chunking boundaries -> same per-chunk
                                // hashes as a hand computation.
        assert_eq!(d[0], crate::journal::fnv1a64(&[1u8; 16]));
        assert_eq!(d[2], crate::journal::fnv1a64(&[1u8; 8]));
        // A write anywhere bumps the version; an identical overwrite
        // leaves the digests equal.
        f.write_at(0, &[1u8; 40]).unwrap();
        let (v2, d2) = f.digest_chunks(16).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(d2, d);
        // A divergent byte flips exactly its chunk.
        f.write_at(17, &[9u8]).unwrap();
        let (_, d3) = f.digest_chunks(16).unwrap();
        assert_eq!(d3[0], d[0]);
        assert_ne!(d3[1], d[1]);
        assert_eq!(d3[2], d[2]);
        // Truncate counts as a mutation too.
        f.truncate(10).unwrap();
        let (v4, d4) = f.digest_chunks(16).unwrap();
        assert_eq!(v4, 4);
        assert_eq!(d4.len(), 1);
    }

    #[test]
    fn memory_backend_sync_reports_nothing_durable() {
        let mut f = small_file();
        f.write_at(0, &[1u8; 64]).unwrap();
        let (durable, report) = f.sync().unwrap();
        assert_eq!(durable, 0);
        assert!(report.disk_ns > 0, "sync flushes dirty cache blocks");
        assert_eq!(f.backend().durable_bytes(), 0);
        assert!(f.backend().resident_bytes() > 0);
    }
}
