//! Virtual-time execution of access plans — the paper's testbed,
//! simulated.
//!
//! [`SimCluster::run`] takes one [`ClientJob`] (an
//! [`AccessPlan`](pvfs_core::AccessPlan) plus a
//! user buffer) per simulated compute node and replays them against
//! *real* [`IoDaemon`](pvfs_server::IoDaemon) state machines under the calibrated
//! [`CostConfig`](pvfs_sim::CostConfig): every request really moves its bytes (the data the
//! correctness tests check), while a discrete-event loop advances
//! virtual time through the contended resources of the Chiba City
//! testbed —
//!
//! * each client's CPU and full-duplex NIC (tx/rx),
//! * each server's request-processing CPU, NIC directions, and disk
//!   (via the daemons' [`ServeCost`](pvfs_server::ServeCost) reports),
//! * the cross-client serialization token for data sieving writes.
//!
//! The returned [`SimReport`] carries per-client completion times — the
//! quantities plotted in the paper's Figures 9–12, 15 and 17.

mod cluster;
#[cfg(test)]
mod tests;

pub use cluster::{
    metadata_rtt_ns, ClientJob, ClientReport, SimCluster, SimReport, TraceEvent, TraceKind,
};
