//! The discrete-event plan executor.

use bytes::Bytes;
use pvfs_core::exec::{
    alloc_temps, apply_copies, copy_bytes, gather_payload_counted, scatter_response, Buffers,
};
use pvfs_core::{AccessPlan, OpKind, Step, WireOp};
use pvfs_proto::{Request, Response};
use pvfs_server::{IoDaemon, IodConfig};
use pvfs_sim::{CostConfig, EventQueue, FifoResource, Histogram, SimTime};
use pvfs_types::{FileHandle, PvfsError, PvfsResult, Region, ServerId, StripeLayout};
use std::collections::VecDeque;

/// One recorded simulation event (opt-in, bounded; see
/// [`SimCluster::run_with_trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// The client involved.
    pub client: usize,
    /// What happened.
    pub kind: TraceKind,
}

/// Event kinds recorded by the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A wire request left the client.
    Issued {
        /// Destination server.
        server: ServerId,
        /// Operation name (`read`, `write_list`, ...).
        op: &'static str,
    },
    /// A response finished processing at the client.
    Completed {
        /// The server that answered.
        server: ServerId,
        /// Issue-to-done round-trip (ns).
        rtt_ns: u64,
    },
    /// The client entered its serialized section.
    SerialAcquired,
    /// The client's plan finished.
    Done,
}

/// One simulated compute node's work: a compiled plan and the user
/// buffer it reads from / writes into.
pub struct ClientJob {
    /// The access plan to execute.
    pub plan: AccessPlan,
    /// The user buffer (read destination / write source).
    pub user: Vec<u8>,
}

/// Per-client outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientReport {
    /// Virtual time at which this client's plan completed.
    pub finish: SimTime,
    /// Wire requests issued.
    pub requests: u64,
    /// Rounds executed.
    pub rounds: u64,
    /// Bytes sent (request bulk payloads).
    pub bytes_sent: u64,
    /// Bytes received (response bulk payloads).
    pub bytes_received: u64,
    /// Client-side copy traffic.
    pub copy_bytes: u64,
    /// Serial sections entered.
    pub serial_sections: u64,
}

/// Whole-run outcome.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Completion time of the slowest client — the paper's reported
    /// per-test time.
    pub makespan: SimTime,
    /// Per-client details.
    pub clients: Vec<ClientReport>,
    /// Total requests served per I/O daemon.
    pub server_requests: Vec<u64>,
    /// Per-server CPU busy time (ns) — queueing evidence for the
    /// block-block analysis.
    pub server_busy_ns: Vec<u64>,
    /// Request round-trip latency distribution across all clients
    /// (issue → response fully processed).
    pub rtt: Histogram,
}

impl SimReport {
    /// Makespan in seconds (figure y-axes).
    pub fn seconds(&self) -> f64 {
        self.makespan.as_secs_f64()
    }

    /// Total requests across all servers.
    pub fn total_requests(&self) -> u64 {
        self.server_requests.iter().sum()
    }
}

/// One metadata round trip (open/close at the manager) under `cost` —
/// used by the Fig. 17 harness for its open/close bars; the manager is
/// deliberately outside the simulated data path, as in PVFS.
pub fn metadata_rtt_ns(cost: &CostConfig) -> u64 {
    cost.client.per_request_ns
        + 2 * cost.net.latency_ns
        + cost.net.transfer_ns(64) * 2
        + cost.server.per_request_ns
}

/// The simulated cluster: real daemons + virtual-time resources.
pub struct SimCluster {
    cost: CostConfig,
    daemons: Vec<IoDaemon>,
    server_cpu: Vec<FifoResource>,
    server_tx: Vec<FifoResource>,
    server_rx: Vec<FifoResource>,
}

impl SimCluster {
    /// A cluster of `n_servers` I/O daemons with the given disk/cache
    /// configuration and cost calibration.
    pub fn new(n_servers: u32, iod: IodConfig, cost: CostConfig) -> SimCluster {
        assert!(n_servers > 0);
        SimCluster {
            cost,
            daemons: (0..n_servers)
                .map(|i| IoDaemon::new(ServerId(i), iod))
                .collect(),
            server_cpu: vec![FifoResource::new(); n_servers as usize],
            server_tx: vec![FifoResource::new(); n_servers as usize],
            server_rx: vec![FifoResource::new(); n_servers as usize],
        }
    }

    /// Paper-default cluster: 8 I/O servers, default disk/cache/cost.
    pub fn paper_default() -> SimCluster {
        SimCluster::new(8, IodConfig::default(), CostConfig::paper_default())
    }

    /// The cost calibration in use.
    pub fn cost(&self) -> &CostConfig {
        &self.cost
    }

    /// Direct daemon access (verification).
    pub fn daemon(&self, id: ServerId) -> &IoDaemon {
        &self.daemons[id.index()]
    }

    /// Pre-load file content outside simulated time (test/bench setup
    /// for read experiments).
    pub fn seed_file(&mut self, handle: FileHandle, layout: &StripeLayout, content: &[u8]) {
        let region = Region::new(0, content.len() as u64);
        for slot in 0..layout.pcount {
            let server = layout.server_at_slot(slot);
            let share: Vec<u8> = layout
                .segments(region)
                .filter(|s| s.slot == slot)
                .flat_map(|s| content[s.logical.offset as usize..s.logical.end() as usize].to_vec())
                .collect();
            if share.is_empty() {
                continue;
            }
            let (resp, _) = self.daemons[server.index()].handle(&Request::Write {
                handle,
                layout: *layout,
                region,
                data: Bytes::from(share),
            });
            assert!(matches!(resp, Response::Written { .. }), "seed failed");
        }
    }

    /// Warm-seed a file: write zeros across `[0, len)` and flush, so
    /// the whole file is resident and clean in every server's buffer
    /// cache. Read experiments start warm (the paper averaged repeated
    /// runs) and write experiments measure the write path, not phantom
    /// cold-read disk costs. Runs outside simulated time.
    pub fn seed_warm(&mut self, handle: FileHandle, layout: &StripeLayout, len: u64) {
        const CHUNK: u64 = 1 << 20;
        let zeros = vec![0u8; CHUNK as usize];
        let mut off = 0;
        while off < len {
            let n = CHUNK.min(len - off);
            let region = Region::new(off, n);
            for server in layout.servers_touched(region) {
                let slot = server.0 - layout.base;
                let share = layout.bytes_on_slot(region, slot);
                if share == 0 {
                    continue;
                }
                let (resp, _) = self.daemons[server.index()].handle(&Request::Write {
                    handle,
                    layout: *layout,
                    region,
                    data: Bytes::from(zeros[..share as usize].to_vec()),
                });
                assert!(matches!(resp, Response::Written { .. }), "seed_warm failed");
            }
            off += n;
        }
        for d in &mut self.daemons {
            d.flush_handle(handle);
        }
    }

    /// Pre-extend a file with zeros up to `len` bytes outside simulated
    /// time — cheap setup for paper-scale read workloads where content
    /// is irrelevant to timing.
    pub fn seed_extent(&mut self, handle: FileHandle, layout: &StripeLayout, len: u64) {
        if len == 0 {
            return;
        }
        for slot in 0..layout.pcount {
            let server = layout.server_at_slot(slot);
            // Write a single byte at each server's last local offset.
            let mut last: Option<u64> = None;
            // The last stripe this slot owns below `len`.
            let last_stripe = (len - 1) / layout.ssize;
            for g in (0..=last_stripe).rev() {
                if (g % layout.pcount as u64) as u32 == slot {
                    let start = g * layout.ssize;
                    let end = (start + layout.ssize).min(len);
                    let (_, local) = layout.to_local(end - 1);
                    last = Some(local);
                    break;
                }
            }
            if let Some(local_last) = last {
                let logical = layout.to_logical(slot, local_last);
                let (resp, _) = self.daemons[server.index()].handle(&Request::Write {
                    handle,
                    layout: *layout,
                    region: Region::new(logical, 1),
                    data: Bytes::from(vec![0u8]),
                });
                assert!(matches!(resp, Response::Written { .. }));
            }
        }
    }

    /// Execute all jobs to completion in virtual time; returns the
    /// report and the final user buffers (read results), in job order.
    /// Server request counts in the report cover this run only (seeding
    /// is excluded).
    pub fn run(&mut self, jobs: Vec<ClientJob>) -> PvfsResult<(SimReport, Vec<Vec<u8>>)> {
        self.run_inner(jobs, None).map(|(r, u, _)| (r, u))
    }

    /// [`run`](Self::run), additionally recording up to `limit` trace
    /// events (issue/complete/serial/done) in virtual-time order of
    /// their processing. Bounded so paper-scale runs can sample their
    /// first events without holding tens of millions.
    pub fn run_with_trace(
        &mut self,
        jobs: Vec<ClientJob>,
        limit: usize,
    ) -> PvfsResult<(SimReport, Vec<Vec<u8>>, Vec<TraceEvent>)> {
        self.run_inner(jobs, Some(limit))
    }

    fn run_inner(
        &mut self,
        jobs: Vec<ClientJob>,
        trace_limit: Option<usize>,
    ) -> PvfsResult<(SimReport, Vec<Vec<u8>>, Vec<TraceEvent>)> {
        let base_requests: Vec<u64> = self.daemons.iter().map(|d| d.stats().requests).collect();
        let base_busy: Vec<u64> = self.server_cpu.iter().map(|r| r.busy_ns()).collect();
        let mut engine = Engine::new(self, jobs);
        engine.trace_limit = trace_limit;
        engine.run()?;
        let (mut report, users, trace) = engine.into_report();
        for (r, base) in report.server_requests.iter_mut().zip(base_requests) {
            *r -= base;
        }
        for (b, base) in report.server_busy_ns.iter_mut().zip(base_busy) {
            *b -= base;
        }
        Ok((report, users, trace))
    }
}

// ---------------------------------------------------------------------
// engine internals
// ---------------------------------------------------------------------

enum Ev {
    /// The client is ready to process its next plan step.
    Step(usize),
    /// A request frame has fully left the client NIC and propagated.
    Arrive(usize),
    /// A response frame has fully left the server NIC and propagated.
    Complete(usize),
}

/// Bounded trace push, callable while other Engine fields are borrowed.
fn push_trace(
    limit: Option<usize>,
    trace: &mut Vec<TraceEvent>,
    at: SimTime,
    client: usize,
    kind: TraceKind,
) {
    if let Some(limit) = limit {
        if trace.len() < limit {
            trace.push(TraceEvent { at, client, kind });
        }
    }
}

struct InFlight {
    client: usize,
    server: ServerId,
    issued_at: SimTime,
    wire: WireOp,
    request: Option<Request>,
    req_control: u64,
    req_bulk: u64,
    response: Option<Response>,
    resp_control: u64,
    resp_bulk: u64,
}

struct ClientState {
    plan: AccessPlan,
    user: Vec<u8>,
    temps: Vec<Vec<u8>>,
    cpu: FifoResource,
    tx: FifoResource,
    rx: FifoResource,
    pending: usize,
    round_finish: SimTime,
    report: ClientReport,
    rtt: Histogram,
    done: bool,
}

struct Engine<'a> {
    cluster: &'a mut SimCluster,
    clients: Vec<ClientState>,
    queue: EventQueue<Ev>,
    inflight: Vec<Option<InFlight>>,
    free_slots: Vec<usize>,
    serial_held: bool,
    serial_waiting: VecDeque<usize>,
    now: SimTime,
    trace_limit: Option<usize>,
    trace: Vec<TraceEvent>,
}

impl<'a> Engine<'a> {
    fn new(cluster: &'a mut SimCluster, jobs: Vec<ClientJob>) -> Engine<'a> {
        let mut queue = EventQueue::new();
        let clients: Vec<ClientState> = jobs
            .into_iter()
            .map(|job| {
                let temps = alloc_temps(&job.plan.temp_sizes);
                ClientState {
                    plan: job.plan,
                    user: job.user,
                    temps,
                    cpu: FifoResource::new(),
                    tx: FifoResource::new(),
                    rx: FifoResource::new(),
                    pending: 0,
                    round_finish: SimTime::ZERO,
                    report: ClientReport::default(),
                    rtt: Histogram::new(),
                    done: false,
                }
            })
            .collect();
        for i in 0..clients.len() {
            queue.push(SimTime::ZERO, Ev::Step(i));
        }
        Engine {
            cluster,
            clients,
            queue,
            inflight: Vec::new(),
            free_slots: Vec::new(),
            serial_held: false,
            serial_waiting: VecDeque::new(),
            now: SimTime::ZERO,
            trace_limit: None,
            trace: Vec::new(),
        }
    }

    fn run(&mut self) -> PvfsResult<()> {
        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            match ev {
                Ev::Step(c) => self.on_step(c, t)?,
                Ev::Arrive(slot) => self.on_arrive(slot, t)?,
                Ev::Complete(slot) => self.on_complete(slot, t)?,
            }
        }
        if let Some(c) = self.clients.iter().position(|c| !c.done) {
            return Err(PvfsError::protocol(format!(
                "simulation deadlock: client {c} never finished (serial section misuse?)"
            )));
        }
        Ok(())
    }

    fn on_step(&mut self, c: usize, t: SimTime) -> PvfsResult<()> {
        let cost = self.cluster.cost;
        let state = &mut self.clients[c];
        match state.plan.next_step() {
            None => {
                state.done = true;
                state.report.finish = t;
                push_trace(self.trace_limit, &mut self.trace, t, c, TraceKind::Done);
                Ok(())
            }
            Some(Step::Round(ops)) => {
                state.pending = ops.len();
                state.round_finish = t;
                state.report.rounds += 1;
                state.report.requests += ops.len() as u64;
                let handle = state.plan.handle;
                let layout = state.plan.layout;
                let mut cur = t;
                for wire in ops {
                    // Build the request, gathering real payload bytes.
                    let (request, fragments) = {
                        let bufs = Buffers {
                            user: &mut state.user,
                            temps: &mut state.temps,
                        };
                        build_request(&wire, handle, &layout, &bufs)
                    };
                    let req_control = request.control_wire_size();
                    let req_bulk = request.bulk_len();
                    state.report.bytes_sent += req_bulk;
                    // Client CPU: issue + per-fragment gather work +
                    // payload copy.
                    let send_cpu = cost.client.per_request_ns
                        + fragments * cost.client.per_fragment_ns
                        + cost.client.memcpy_ns(req_bulk);
                    let (_, cpu_end) = state.cpu.acquire(cur, send_cpu);
                    cur = cpu_end;
                    // Client NIC tx, then the wire.
                    let wire_ns = cost.net.transfer_ns(req_control + req_bulk);
                    let (_, tx_end) = state.tx.acquire(cpu_end, wire_ns);
                    let arrive_at = tx_end + cost.net.latency_ns;
                    let flight = InFlight {
                        client: c,
                        server: wire.server,
                        issued_at: t,
                        wire,
                        request: Some(request),
                        req_control,
                        req_bulk,
                        response: None,
                        resp_control: 0,
                        resp_bulk: 0,
                    };
                    // Inline slot allocation: `state` still borrows
                    // self.clients, but free_slots/inflight/queue are
                    // disjoint fields.
                    let server = flight.server;
                    let op = flight
                        .request
                        .as_ref()
                        .map(|r| r.op_name())
                        .unwrap_or("unknown");
                    let slot = if let Some(s) = self.free_slots.pop() {
                        self.inflight[s] = Some(flight);
                        s
                    } else {
                        self.inflight.push(Some(flight));
                        self.inflight.len() - 1
                    };
                    push_trace(
                        self.trace_limit,
                        &mut self.trace,
                        t,
                        c,
                        TraceKind::Issued { server, op },
                    );
                    self.queue.push(arrive_at, Ev::Arrive(slot));
                }
                Ok(())
            }
            Some(Step::Copy(pairs)) => {
                let bytes = copy_bytes(&pairs);
                state.report.copy_bytes += bytes;
                {
                    let mut bufs = Buffers {
                        user: &mut state.user,
                        temps: &mut state.temps,
                    };
                    apply_copies(&pairs, &mut bufs);
                }
                let (_, end) = state.cpu.acquire(t, cost.client.memcpy_ns(bytes));
                self.queue.push(end, Ev::Step(c));
                Ok(())
            }
            Some(Step::SerialBegin) => {
                state.report.serial_sections += 1;
                if self.serial_held {
                    self.serial_waiting.push_back(c);
                } else {
                    self.serial_held = true;
                    push_trace(
                        self.trace_limit,
                        &mut self.trace,
                        t,
                        c,
                        TraceKind::SerialAcquired,
                    );
                    self.queue.push(t, Ev::Step(c));
                }
                Ok(())
            }
            Some(Step::SerialEnd) => {
                debug_assert!(self.serial_held, "SerialEnd without SerialBegin");
                self.serial_held = false;
                let release = t + cost.serial_handoff_ns;
                if let Some(next) = self.serial_waiting.pop_front() {
                    self.serial_held = true;
                    push_trace(
                        self.trace_limit,
                        &mut self.trace,
                        release,
                        next,
                        TraceKind::SerialAcquired,
                    );
                    self.queue.push(release, Ev::Step(next));
                }
                self.queue.push(t, Ev::Step(c));
                Ok(())
            }
        }
    }

    fn on_arrive(&mut self, slot: usize, t: SimTime) -> PvfsResult<()> {
        let cost = self.cluster.cost;
        let flight = self.inflight[slot].as_mut().expect("live flight");
        let sidx = flight.server.index();
        if sidx >= self.cluster.daemons.len() {
            return Err(PvfsError::NoSuchServer(flight.server.0));
        }
        // Receiving NIC drains the frame.
        let wire_ns = cost.net.transfer_ns(flight.req_control + flight.req_bulk);
        let (_, rx_end) = self.cluster.server_rx[sidx].acquire(t, wire_ns);
        // Serve (real data movement) and charge the CPU + disk.
        let request = flight.request.take().expect("request present");
        let (response, serve_cost) = self.cluster.daemons[sidx].handle(&request);
        if let Response::Error(e) = response {
            return Err(e);
        }
        let service = cost.server.per_request_ns
            + serve_cost.regions * cost.server.per_region_ns
            + serve_cost.local_accesses * cost.server.per_access_ns
            + serve_cost.disk.disk_ns;
        let (_, cpu_end) = self.cluster.server_cpu[sidx].acquire(rx_end, service);
        // The write-ACK stall delays the response without occupying any
        // resource: parallel writes in one round overlap their stalls.
        let ack_stall = if request.is_write() {
            cost.net.write_ack_stall_ns
        } else {
            0
        };
        // Response back through the server NIC.
        flight.resp_bulk = response.bulk_len();
        flight.resp_control = 32;
        flight.response = Some(response);
        let resp_wire = cost.net.transfer_ns(flight.resp_control + flight.resp_bulk);
        let (_, stx_end) = self.cluster.server_tx[sidx].acquire(cpu_end, resp_wire);
        self.queue.push(
            stx_end + cost.net.latency_ns + ack_stall,
            Ev::Complete(slot),
        );
        Ok(())
    }

    fn on_complete(&mut self, slot: usize, t: SimTime) -> PvfsResult<()> {
        let cost = self.cluster.cost;
        let flight = self.inflight[slot].take().expect("live flight");
        self.free_slots.push(slot);
        let state = &mut self.clients[flight.client];
        // Client NIC rx.
        let wire_ns = cost.net.transfer_ns(flight.resp_control + flight.resp_bulk);
        let (_, rx_end) = state.rx.acquire(t, wire_ns);
        // Receive processing: scatter (real bytes) + per-fragment cost.
        let response = flight.response.expect("response present");
        let recv_cpu = match response {
            Response::Data { ref data } => {
                state.report.bytes_received += data.len() as u64;
                let layout = state.plan.layout;
                let mut bufs = Buffers {
                    user: &mut state.user,
                    temps: &mut state.temps,
                };
                let fragments =
                    scatter_response(&flight.wire.op, &layout, flight.server, data, &mut bufs)?;
                fragments * cost.client.per_fragment_ns + cost.client.memcpy_ns(data.len() as u64)
            }
            Response::Written { .. } => 0,
            other => {
                return Err(PvfsError::protocol(format!(
                    "unexpected simulated response {other:?}"
                )))
            }
        };
        let (_, done) = state.cpu.acquire(rx_end, recv_cpu);
        let rtt_ns = done - flight.issued_at;
        state.rtt.record(rtt_ns);
        state.round_finish = state.round_finish.max(done);
        state.pending -= 1;
        let client = flight.client;
        let server = flight.server;
        push_trace(
            self.trace_limit,
            &mut self.trace,
            done,
            client,
            TraceKind::Completed { server, rtt_ns },
        );
        if state.pending == 0 {
            self.queue.push(state.round_finish, Ev::Step(flight.client));
        }
        Ok(())
    }

    fn into_report(self) -> (SimReport, Vec<Vec<u8>>, Vec<TraceEvent>) {
        let mut report = SimReport {
            makespan: SimTime::ZERO,
            clients: Vec::with_capacity(self.clients.len()),
            server_requests: self
                .cluster
                .daemons
                .iter()
                .map(|d| d.stats().requests)
                .collect(),
            server_busy_ns: self
                .cluster
                .server_cpu
                .iter()
                .map(|r| r.busy_ns())
                .collect(),
            rtt: Histogram::new(),
        };
        let mut users = Vec::with_capacity(self.clients.len());
        for c in self.clients {
            report.makespan = report.makespan.max(c.report.finish);
            report.rtt.merge(&c.rtt);
            report.clients.push(c.report);
            users.push(c.user);
        }
        (report, users, self.trace)
    }
}

/// Build the wire request for a wire op, returning the memory fragment
/// count for the client cost model (writes count gather fragments; for
/// reads the fragments are counted at scatter time).
fn build_request(
    wire: &WireOp,
    handle: FileHandle,
    layout: &StripeLayout,
    bufs: &Buffers<'_>,
) -> (Request, u64) {
    match &wire.op {
        OpKind::Read { region, .. } => (
            Request::Read {
                handle,
                layout: *layout,
                region: *region,
            },
            0,
        ),
        OpKind::ReadList { regions, .. } => (
            Request::ReadList {
                handle,
                layout: *layout,
                regions: regions.clone(),
            },
            0,
        ),
        OpKind::ReadVectors { runs, .. } => (
            Request::ReadVectors {
                handle,
                layout: *layout,
                runs: runs.clone(),
            },
            0,
        ),
        OpKind::Write { region, .. } => {
            let (data, frags) = gather_payload_counted(&wire.op, layout, wire.server, bufs);
            (
                Request::Write {
                    handle,
                    layout: *layout,
                    region: *region,
                    data,
                },
                frags,
            )
        }
        OpKind::WriteList { regions, .. } => {
            let (data, frags) = gather_payload_counted(&wire.op, layout, wire.server, bufs);
            (
                Request::WriteList {
                    handle,
                    layout: *layout,
                    regions: regions.clone(),
                    data,
                },
                frags,
            )
        }
        OpKind::WriteVectors { runs, .. } => {
            let (data, frags) = gather_payload_counted(&wire.op, layout, wire.server, bufs);
            (
                Request::WriteVectors {
                    handle,
                    layout: *layout,
                    runs: runs.clone(),
                    data,
                },
                frags,
            )
        }
    }
}
