//! Engine tests: data correctness under virtual time, timing shape
//! sanity, and determinism.

use super::*;
use pvfs_core::{plan, IoKind, ListRequest, Method, MethodConfig};
use pvfs_server::IodConfig;
use pvfs_sim::CostConfig;
use pvfs_types::{FileHandle, RegionList, StripeLayout};

const FH: FileHandle = FileHandle(1);

fn layout(pcount: u32, ssize: u64) -> StripeLayout {
    StripeLayout::new(0, pcount, ssize).unwrap()
}

fn cluster(pcount: u32) -> SimCluster {
    SimCluster::new(pcount, IodConfig::default(), CostConfig::paper_default())
}

fn strided_request(n: u64, len: u64, stride: u64) -> ListRequest {
    ListRequest::gather(RegionList::from_pairs((0..n).map(|i| (i * stride, len))).unwrap())
}

fn job(
    method: Method,
    kind: IoKind,
    request: &ListRequest,
    l: StripeLayout,
    user: Vec<u8>,
) -> ClientJob {
    let cfg = MethodConfig {
        sieve_buffer: 4096,
        ..MethodConfig::paper_default()
    };
    ClientJob {
        plan: plan(method, kind, request, FH, l, &cfg).unwrap(),
        user,
    }
}

#[test]
fn simulated_read_returns_correct_bytes() {
    let l = layout(4, 16);
    let mut sim = cluster(4);
    let content: Vec<u8> = (0..2000).map(|i| (i % 251) as u8).collect();
    sim.seed_file(FH, &l, &content);
    let request = strided_request(30, 7, 61);
    for method in Method::ALL {
        let mut sim = cluster(4);
        sim.seed_file(FH, &l, &content);
        let user = vec![0u8; request.total_len() as usize];
        let (report, users) = sim
            .run(vec![job(method, IoKind::Read, &request, l, user)])
            .unwrap();
        assert!(report.makespan > pvfs_sim::SimTime::ZERO);
        // Oracle.
        let mut expected = Vec::new();
        for r in request.file.iter() {
            expected.extend_from_slice(&content[r.offset as usize..r.end() as usize]);
        }
        assert_eq!(users[0], expected, "read bytes wrong for {method}");
    }
}

#[test]
fn simulated_write_lands_correct_bytes() {
    let l = layout(4, 16);
    let request = strided_request(30, 7, 61);
    let src: Vec<u8> = (0..request.total_len())
        .map(|i| (i % 13) as u8 + 1)
        .collect();
    for method in Method::ALL {
        let mut sim = cluster(4);
        let (_, _) = sim
            .run(vec![job(method, IoKind::Write, &request, l, src.clone())])
            .unwrap();
        // Verify via the daemons directly.
        let mut cursor = 0usize;
        for r in request.file.iter() {
            for seg in l.segments(*r) {
                let d = sim.daemon(seg.server);
                let got = d
                    .with_local_file(FH, |f| {
                        f.peek_vec(seg.local_offset, seg.logical.len as usize)
                    })
                    .expect("file exists");
                assert_eq!(
                    got,
                    src[cursor..cursor + seg.logical.len as usize].to_vec(),
                    "write bytes wrong for {method}"
                );
                cursor += seg.logical.len as usize;
            }
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let l = layout(8, 64);
    let request = strided_request(200, 16, 100);
    let run = || {
        let mut sim = cluster(8);
        let jobs: Vec<ClientJob> = (0..4)
            .map(|_| {
                job(
                    Method::List,
                    IoKind::Write,
                    &request,
                    l,
                    vec![7u8; request.total_len() as usize],
                )
            })
            .collect();
        sim.run(jobs).unwrap().0.makespan
    };
    assert_eq!(run(), run());
}

#[test]
fn multiple_io_costs_scale_with_region_count() {
    // The paper's core claim: request-processing overhead makes
    // multiple I/O linear in the number of accesses.
    let l = layout(4, 16384);
    let time_for = |n: u64| {
        let request = strided_request(n, 16, 256);
        let mut sim = cluster(4);
        sim.seed_extent(FH, &l, n * 256 + 16);
        let user = vec![0u8; request.total_len() as usize];
        let (report, _) = sim
            .run(vec![job(Method::Multiple, IoKind::Read, &request, l, user)])
            .unwrap();
        report.seconds()
    };
    let t100 = time_for(100);
    let t800 = time_for(800);
    let ratio = t800 / t100;
    assert!(
        (4.0..16.0).contains(&ratio),
        "expected ~8x scaling, got {ratio} ({t100} vs {t800})"
    );
}

#[test]
fn list_io_beats_multiple_io_on_fragmented_reads() {
    let l = layout(4, 16384);
    let request = strided_request(640, 16, 256);
    let mut times = Vec::new();
    for method in [Method::Multiple, Method::List] {
        let mut sim = cluster(4);
        sim.seed_extent(FH, &l, 640 * 256 + 16);
        let user = vec![0u8; request.total_len() as usize];
        let (report, _) = sim
            .run(vec![job(method, IoKind::Read, &request, l, user)])
            .unwrap();
        times.push(report.seconds());
    }
    // Read-path gap is modest (per-fragment receive costs dominate
    // both); the dramatic gap is on writes (see below) — Fig. 9 vs 10.
    assert!(
        times[0] > 1.3 * times[1],
        "multiple {} should be slower than list {}",
        times[0],
        times[1]
    );
}

#[test]
fn write_gap_is_orders_of_magnitude() {
    // Fig. 10's shape: multiple vs list writes separated by ~the
    // trailing-data factor.
    let l = layout(4, 16384);
    let request = strided_request(640, 16, 256);
    let src = vec![3u8; request.total_len() as usize];
    let mut times = Vec::new();
    for method in [Method::Multiple, Method::List] {
        let mut sim = cluster(4);
        let (report, _) = sim
            .run(vec![job(method, IoKind::Write, &request, l, src.clone())])
            .unwrap();
        times.push(report.seconds());
    }
    let ratio = times[0] / times[1];
    assert!(
        ratio > 20.0,
        "multiple/list write ratio {ratio} ({} vs {})",
        times[0],
        times[1]
    );
}

#[test]
fn sieving_read_time_is_flat_in_access_count() {
    let l = layout(4, 16384);
    let time_for = |n: u64, len: u64| {
        // Same extent (~160 KiB), different fragmentation.
        let stride = 160_000 / n;
        let request = strided_request(n, len.min(stride), stride);
        let mut sim = cluster(4);
        sim.seed_extent(FH, &l, 165_000);
        let user = vec![0u8; request.total_len() as usize];
        let (report, _) = sim
            .run(vec![job(
                Method::DataSieving,
                IoKind::Read,
                &request,
                l,
                user,
            )])
            .unwrap();
        report.seconds()
    };
    let coarse = time_for(100, 64);
    let fine = time_for(1600, 4);
    assert!(
        fine < 1.5 * coarse,
        "sieving should be ~flat: coarse {coarse} vs fine {fine}"
    );
}

#[test]
fn serialized_sieving_writes_stack_up() {
    // N sieving writers serialize; makespan should grow ~linearly with
    // N while list writers overlap.
    let l = layout(4, 16384);
    let request = strided_request(64, 32, 1024);
    let sieving_time = |n_clients: usize| {
        let mut sim = cluster(4);
        let jobs: Vec<ClientJob> = (0..n_clients)
            .map(|_| {
                job(
                    Method::DataSieving,
                    IoKind::Write,
                    &request,
                    l,
                    vec![9u8; request.total_len() as usize],
                )
            })
            .collect();
        sim.run(jobs).unwrap().0.seconds()
    };
    let one = sieving_time(1);
    let four = sieving_time(4);
    assert!(
        four > 3.0 * one,
        "serialization should stack: 1 client {one}, 4 clients {four}"
    );
}

#[test]
fn concurrent_clients_share_server_capacity() {
    // Doubling clients on the same servers should not double the
    // makespan of a server-bound workload... but it must grow.
    let l = layout(2, 16384);
    let request = strided_request(400, 16, 64);
    let time_for = |n: usize| {
        let mut sim = cluster(2);
        sim.seed_extent(FH, &l, 400 * 64 + 16);
        let jobs: Vec<ClientJob> = (0..n)
            .map(|_| {
                job(
                    Method::Multiple,
                    IoKind::Read,
                    &request,
                    l,
                    vec![0u8; request.total_len() as usize],
                )
            })
            .collect();
        sim.run(jobs).unwrap().0.seconds()
    };
    let one = time_for(1);
    let eight = time_for(8);
    assert!(eight > one, "contention must cost something");
    assert!(
        eight < 10.0 * one,
        "but rounds overlap across clients: {one} vs {eight}"
    );
}

#[test]
fn report_counts_match_plan_stats() {
    let l = layout(4, 64);
    let request = strided_request(100, 8, 100);
    let cfg = MethodConfig::paper_default();
    let p = plan(Method::List, IoKind::Read, &request, FH, l, &cfg).unwrap();
    let expected_requests = p.stats.requests;
    let expected_rounds = p.stats.rounds;
    let mut sim = cluster(4);
    sim.seed_extent(FH, &l, 100 * 100 + 8);
    let (report, _) = sim
        .run(vec![ClientJob {
            plan: p,
            user: vec![0u8; request.total_len() as usize],
        }])
        .unwrap();
    assert_eq!(report.clients[0].requests, expected_requests);
    assert_eq!(report.clients[0].rounds, expected_rounds);
    assert_eq!(report.total_requests(), expected_requests);
}

#[test]
fn misrouted_plan_surfaces_server_error() {
    // A plan whose layout names servers the cluster doesn't have must
    // fail loudly, not hang.
    let wide = layout(8, 64);
    let request = strided_request(4, 8, 100);
    let mut sim = cluster(2); // only 2 servers
    let err = sim
        .run(vec![job(
            Method::Multiple,
            IoKind::Read,
            &request,
            wide,
            vec![0u8; request.total_len() as usize],
        )])
        .unwrap_err();
    assert!(matches!(err, pvfs_types::PvfsError::NoSuchServer(_)));
}

#[test]
fn unbalanced_serial_section_is_a_deadlock_error() {
    // A hand-built plan that acquires the serial token and never
    // releases it while a second client waits: the engine must detect
    // the deadlock instead of spinning.
    use pvfs_core::{AccessPlan, PlanStats, Step};
    let l = layout(2, 64);
    let hog = AccessPlan::new(
        FH,
        l,
        IoKind::Write,
        vec![],
        PlanStats::default(),
        vec![Step::SerialBegin].into_iter(),
    );
    let waiter = AccessPlan::new(
        FH,
        l,
        IoKind::Write,
        vec![],
        PlanStats::default(),
        vec![Step::SerialBegin, Step::SerialEnd].into_iter(),
    );
    let mut sim = cluster(2);
    let err = sim
        .run(vec![
            ClientJob {
                plan: hog,
                user: vec![],
            },
            ClientJob {
                plan: waiter,
                user: vec![],
            },
        ])
        .unwrap_err();
    assert!(err.to_string().contains("deadlock"), "got: {err}");
}

#[test]
fn rtt_histogram_counts_every_request() {
    let l = layout(4, 64);
    let request = strided_request(100, 8, 100);
    let mut sim = cluster(4);
    sim.seed_warm(FH, &l, 100 * 100 + 8);
    let (report, _) = sim
        .run(vec![job(
            Method::Multiple,
            IoKind::Read,
            &request,
            l,
            vec![0u8; request.total_len() as usize],
        )])
        .unwrap();
    assert_eq!(report.rtt.count(), report.clients[0].requests);
    // Every RTT includes at least the two-way wire latency.
    assert!(report.rtt.min_ns() >= 2 * sim.cost().net.latency_ns);
    assert!(report.rtt.percentile_ns(0.5) <= report.rtt.max_ns());
}

#[test]
fn write_rtts_carry_the_ack_stall() {
    let l = layout(4, 64);
    let request = strided_request(50, 8, 100);
    let mut sim = cluster(4);
    let (report, _) = sim
        .run(vec![job(
            Method::Multiple,
            IoKind::Write,
            &request,
            l,
            vec![1u8; request.total_len() as usize],
        )])
        .unwrap();
    let stall = sim.cost().net.write_ack_stall_ns;
    assert!(
        report.rtt.min_ns() >= stall,
        "{} < {stall}",
        report.rtt.min_ns()
    );
}

#[test]
fn trace_records_issue_complete_done_in_order() {
    let l = layout(4, 64);
    let request = strided_request(10, 8, 100);
    let mut sim = cluster(4);
    sim.seed_warm(FH, &l, 10 * 100 + 8);
    let (report, _, trace) = sim
        .run_with_trace(
            vec![job(
                Method::Multiple,
                IoKind::Read,
                &request,
                l,
                vec![0u8; request.total_len() as usize],
            )],
            10_000,
        )
        .unwrap();
    let issued = trace
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Issued { .. }))
        .count() as u64;
    let completed = trace
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::Completed { .. }))
        .count() as u64;
    assert_eq!(issued, report.clients[0].requests);
    assert_eq!(completed, issued);
    assert!(matches!(trace.last().unwrap().kind, TraceKind::Done));
    // Completions carry positive RTTs matching the histogram count.
    assert_eq!(report.rtt.count(), completed);
    for e in &trace {
        if let TraceKind::Completed { rtt_ns, .. } = e.kind {
            assert!(rtt_ns > 0);
        }
    }
    // Trace is in processing-time order.
    assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
}

#[test]
fn trace_limit_bounds_memory() {
    let l = layout(4, 64);
    let request = strided_request(100, 8, 100);
    let mut sim = cluster(4);
    sim.seed_warm(FH, &l, 100 * 100 + 8);
    let (_, _, trace) = sim
        .run_with_trace(
            vec![job(
                Method::Multiple,
                IoKind::Read,
                &request,
                l,
                vec![0u8; request.total_len() as usize],
            )],
            16,
        )
        .unwrap();
    assert_eq!(trace.len(), 16);
}

#[test]
fn serialized_writers_trace_exclusive_sections() {
    let l = layout(4, 64);
    let request = strided_request(16, 8, 200);
    let mut sim = cluster(4);
    let jobs: Vec<ClientJob> = (0..3)
        .map(|_| {
            job(
                Method::DataSieving,
                IoKind::Write,
                &request,
                l,
                vec![1u8; request.total_len() as usize],
            )
        })
        .collect();
    let (_, _, trace) = sim.run_with_trace(jobs, 100_000).unwrap();
    let acquires: Vec<usize> = trace
        .iter()
        .filter(|e| matches!(e.kind, TraceKind::SerialAcquired))
        .map(|e| e.client)
        .collect();
    assert_eq!(acquires.len(), 3);
    // All three distinct clients acquired, one at a time.
    let mut sorted = acquires.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 3);
}

#[test]
fn empty_job_list_completes_instantly() {
    let mut sim = cluster(2);
    let (report, users) = sim.run(vec![]).unwrap();
    assert_eq!(report.makespan, pvfs_sim::SimTime::ZERO);
    assert!(users.is_empty());
}

#[test]
fn hybrid_and_datatype_also_run_under_simulation() {
    let l = layout(4, 64);
    let request = strided_request(100, 8, 40);
    for method in [Method::Hybrid, Method::Datatype] {
        let mut sim = cluster(4);
        sim.seed_warm(FH, &l, 100 * 40 + 8);
        let (report, _) = sim
            .run(vec![job(
                method,
                IoKind::Read,
                &request,
                l,
                vec![0u8; request.total_len() as usize],
            )])
            .unwrap();
        assert!(report.makespan > pvfs_sim::SimTime::ZERO, "{method}");
    }
}

#[test]
fn metadata_rtt_is_small_but_nonzero() {
    let cost = CostConfig::paper_default();
    let rtt = metadata_rtt_ns(&cost);
    assert!(rtt > 2 * cost.net.latency_ns);
    assert!(rtt < 10_000_000); // well under 10 ms
}

#[test]
fn datatype_requests_do_not_scale_with_regions() {
    // §5 extension: a regular pattern costs the same number of
    // requests at any fragmentation.
    let l = layout(4, 16384);
    let time_for = |n: u64| {
        let request = strided_request(n, 16, 256);
        let mut sim = cluster(4);
        sim.seed_extent(FH, &l, n * 256 + 16);
        let user = vec![0u8; request.total_len() as usize];
        let (report, _) = sim
            .run(vec![job(Method::Datatype, IoKind::Read, &request, l, user)])
            .unwrap();
        (report.total_requests(), report.seconds())
    };
    let (req_small, _) = time_for(200);
    let (req_big, _) = time_for(3200);
    assert_eq!(req_small, req_big, "regular pattern: constant requests");
}
