//! Two-dimensional block-block access (Fig. 8).
//!
//! A square global array of bytes is partitioned into a `q × q` grid of
//! blocks, one per client (4, 9 or 16 clients in the paper), and stored
//! row-major in one file. Each client accesses its own block in
//! `accesses` equal consecutive pieces of the block's byte stream;
//! pieces never straddle block-row boundaries in the paper's parameter
//! grid, so each access is one contiguous file region. Unlike the 1-D
//! cyclic pattern, a client's regions concentrate on the subset of I/O
//! servers its block rows map to — the load-concentration effect behind
//! the list-I/O upturn the paper observes at ≈150 bytes/access.

use pvfs_core::ListRequest;
use pvfs_types::{PvfsError, PvfsResult, Region, RegionList};

/// Parameters of a block-block run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockBlock {
    /// Number of clients; must be a perfect square (4, 9, 16).
    pub clients: u64,
    /// Accesses each client performs over its block.
    pub accesses_per_client: u64,
    /// Aggregate bytes (the whole array; paper: 1 GiB).
    pub aggregate_bytes: u64,
}

impl BlockBlock {
    /// The paper's configuration: 1 GiB aggregate.
    pub fn paper(clients: u64, accesses_per_client: u64) -> BlockBlock {
        BlockBlock {
            clients,
            accesses_per_client,
            aggregate_bytes: 1 << 30,
        }
    }

    /// Grid side `q` (clients = q²).
    pub fn grid(&self) -> PvfsResult<u64> {
        let q = (self.clients as f64).sqrt().round() as u64;
        if q == 0 || q * q != self.clients {
            return Err(PvfsError::invalid(format!(
                "{} clients is not a perfect square",
                self.clients
            )));
        }
        Ok(q)
    }

    /// Side of the global array in bytes (array is `side × side`).
    pub fn array_side(&self) -> PvfsResult<u64> {
        let side = (self.aggregate_bytes as f64).sqrt().round() as u64;
        if side * side != self.aggregate_bytes {
            return Err(PvfsError::invalid(format!(
                "{} bytes is not a perfect square array",
                self.aggregate_bytes
            )));
        }
        Ok(side)
    }

    /// Bytes per access.
    pub fn access_size(&self) -> PvfsResult<u64> {
        if self.accesses_per_client == 0 {
            return Err(PvfsError::invalid("accesses must be nonzero"));
        }
        let block_bytes = self.aggregate_bytes / self.clients;
        if !block_bytes.is_multiple_of(self.accesses_per_client) {
            return Err(PvfsError::invalid(format!(
                "block of {block_bytes} bytes does not divide into {} accesses",
                self.accesses_per_client
            )));
        }
        Ok(block_bytes / self.accesses_per_client)
    }

    /// Total file size (the whole array).
    pub fn file_size(&self) -> u64 {
        self.aggregate_bytes
    }

    /// The request of client `rank` (row-major rank over the grid).
    /// Contiguous memory; file regions walk the client's block pieces
    /// in row-major order, splitting at block-row boundaries when an
    /// access straddles one.
    pub fn request_for(&self, rank: u64) -> PvfsResult<ListRequest> {
        if rank >= self.clients {
            return Err(PvfsError::invalid(format!(
                "rank {rank} out of range for {} clients",
                self.clients
            )));
        }
        let q = self.grid()?;
        let side = self.array_side()?;
        let bside = side / q; // block side in bytes
        if bside * q != side {
            return Err(PvfsError::invalid(format!(
                "array side {side} does not divide into a {q}×{q} grid"
            )));
        }
        let size = self.access_size()?;
        let (brow, bcol) = (rank / q, rank % q);
        let row0 = brow * bside;
        let col0 = bcol * bside;
        let mut file = RegionList::with_capacity(self.accesses_per_client as usize);
        // Walk the block's byte stream, cutting at access and row
        // boundaries.
        let block_bytes = bside * bside;
        let mut pos = 0u64; // position within the block stream
        while pos < block_bytes {
            let row = pos / bside;
            let within = pos % bside;
            let to_row_end = bside - within;
            let to_access_end = size - (pos % size);
            let len = to_row_end.min(to_access_end);
            let offset = (row0 + row) * side + col0 + within;
            file.push(Region::new(offset, len));
            pos += len;
        }
        Ok(ListRequest::gather(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_turning_point_geometry() {
        // §4.2.2: 9 clients, 800 000 accesses ⇒ ≈149 bytes/access.
        // With a dividing configuration: 2^30 / 16 clients / 2^16
        // accesses = 1024 bytes.
        let b = BlockBlock::paper(16, 1 << 16);
        assert_eq!(b.access_size().unwrap(), 1024);
    }

    #[test]
    fn four_clients_block_layout() {
        // 16×16 array, 2×2 grid of 8×8 blocks, 4 accesses of 16 bytes.
        let b = BlockBlock {
            clients: 4,
            accesses_per_client: 4,
            aggregate_bytes: 256,
        };
        // Client 0: rows 0..8, cols 0..8. Access size 16 = two 8-byte
        // rows worth, split at row boundaries => 8 regions of 8.
        let r = b.request_for(0).unwrap();
        assert_eq!(r.total_len(), 64);
        assert!(r.file.is_sorted_disjoint());
        assert_eq!(r.file.count(), 8);
        assert_eq!(r.file.regions()[0], Region::new(0, 8));
        assert_eq!(r.file.regions()[1], Region::new(16, 8));
        // Client 1 (block col 1) starts at column 8.
        let r1 = b.request_for(1).unwrap();
        assert_eq!(r1.file.regions()[0], Region::new(8, 8));
        // Client 2 (block row 1) starts at row 8.
        let r2 = b.request_for(2).unwrap();
        assert_eq!(r2.file.regions()[0], Region::new(8 * 16, 8));
    }

    #[test]
    fn clients_partition_the_array() {
        let b = BlockBlock {
            clients: 4,
            accesses_per_client: 8,
            aggregate_bytes: 1024, // 32×32
        };
        let mut coverage = vec![false; 1024];
        for k in 0..4 {
            for r in b.request_for(k).unwrap().file.iter() {
                for byte in r.offset..r.end() {
                    assert!(!coverage[byte as usize], "byte {byte} claimed twice");
                    coverage[byte as usize] = true;
                }
            }
        }
        assert!(coverage.iter().all(|c| *c));
    }

    #[test]
    fn small_accesses_stay_within_rows() {
        let b = BlockBlock {
            clients: 4,
            accesses_per_client: 32,
            aggregate_bytes: 1024, // 32x32, blocks 16x16, access 8 bytes
        };
        let r = b.request_for(3).unwrap();
        assert_eq!(r.file.count(), 32);
        for reg in r.file.iter() {
            assert_eq!(reg.len, 8);
        }
    }

    #[test]
    fn region_count_equals_accesses_when_dividing() {
        // Access size divides row length: regions == accesses.
        let b = BlockBlock {
            clients: 9,
            accesses_per_client: 36,
            aggregate_bytes: 144 * 144,
        };
        // blocks 48×48, access = 2304/36 = 64 bytes > row 48? No:
        // block_bytes = 2304, access 64, row 48 -> straddles; count
        // differs. Use an access that divides the row instead.
        let b2 = BlockBlock {
            clients: 9,
            accesses_per_client: 96,
            aggregate_bytes: 144 * 144,
        };
        // access = 2304/96 = 24, divides row 48: regions == accesses.
        let r2 = b2.request_for(4).unwrap();
        assert_eq!(r2.file.count(), 96);
        let r = b.request_for(4).unwrap();
        assert!(r.file.count() >= 36);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(BlockBlock {
            clients: 5,
            accesses_per_client: 4,
            aggregate_bytes: 1 << 20
        }
        .request_for(0)
        .is_err());
        assert!(BlockBlock {
            clients: 4,
            accesses_per_client: 3,
            aggregate_bytes: 256
        }
        .request_for(0)
        .is_err());
        assert!(BlockBlock {
            clients: 4,
            accesses_per_client: 4,
            aggregate_bytes: 200 // not a square
        }
        .request_for(0)
        .is_err());
    }

    #[test]
    fn blocks_touch_row_bands_not_whole_file() {
        // A client's regions stay inside its block-row band — the load
        // concentration the paper blames for the list-I/O upturn.
        let b = BlockBlock {
            clients: 4,
            accesses_per_client: 16,
            aggregate_bytes: 4096, // 64×64, blocks 32×32
        };
        let r = b.request_for(0).unwrap(); // top-left block
        let band_end = 32 * 64; // first 32 rows
        for reg in r.file.iter() {
            assert!(reg.end() <= band_end);
        }
    }
}
