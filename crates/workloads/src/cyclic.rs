//! One-dimensional cyclic access (Fig. 7).
//!
//! A two-dimensional array lives in a single file; each of `clients`
//! processes owns an equal share of its columns, so the file interleaves
//! the processes' data round-robin at *access* granularity. The
//! benchmark holds the aggregate data at 1 GiB and varies the number of
//! accesses per client: more accesses ⇒ smaller pieces ⇒ more
//! noncontiguity, with the aggregate size unchanged (§4.2.1).

use pvfs_core::ListRequest;
use pvfs_types::{PvfsError, PvfsResult, RegionList};

/// Parameters of a 1-D cyclic run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cyclic {
    /// Number of client processes.
    pub clients: u64,
    /// Accesses each client performs (the paper's x-axis).
    pub accesses_per_client: u64,
    /// Aggregate bytes across all clients (paper: 1 GiB).
    pub aggregate_bytes: u64,
}

impl Cyclic {
    /// The paper's configuration: 1 GiB aggregate.
    pub fn paper(clients: u64, accesses_per_client: u64) -> Cyclic {
        Cyclic {
            clients,
            accesses_per_client,
            aggregate_bytes: 1 << 30,
        }
    }

    /// Bytes per access (the quantity the paper computes as
    /// `total / clients / accesses`). Errors if the parameters don't
    /// divide evenly — the paper's parameter grid always does.
    pub fn access_size(&self) -> PvfsResult<u64> {
        if self.clients == 0 || self.accesses_per_client == 0 {
            return Err(PvfsError::invalid("clients and accesses must be nonzero"));
        }
        let denom = self.clients * self.accesses_per_client;
        if !self.aggregate_bytes.is_multiple_of(denom) {
            return Err(PvfsError::invalid(format!(
                "{} bytes do not divide evenly into {} clients × {} accesses",
                self.aggregate_bytes, self.clients, self.accesses_per_client
            )));
        }
        Ok(self.aggregate_bytes / denom)
    }

    /// Total file size (== aggregate bytes: the pattern tiles the file).
    pub fn file_size(&self) -> u64 {
        self.aggregate_bytes
    }

    /// The noncontiguous request of client `rank` (contiguous memory,
    /// cyclic file regions).
    pub fn request_for(&self, rank: u64) -> PvfsResult<ListRequest> {
        if rank >= self.clients {
            return Err(PvfsError::invalid(format!(
                "rank {rank} out of range for {} clients",
                self.clients
            )));
        }
        let size = self.access_size()?;
        let stride = size * self.clients;
        let file = RegionList::from_pairs(
            (0..self.accesses_per_client).map(|i| (i * stride + rank * size, size)),
        )?;
        Ok(ListRequest::gather(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_at_the_9_client_turning_point() {
        // §4.2.2: (1 GiB)/(9 clients)/(800 000 accesses) ≈ 149 bytes.
        // 1 GiB doesn't divide 9 × 800 000 evenly, so check with the
        // nearby dividing configuration the formula describes.
        let c = Cyclic {
            clients: 8,
            accesses_per_client: 1 << 20,
            aggregate_bytes: 1 << 30,
        };
        assert_eq!(c.access_size().unwrap(), 128); // 2^30 / 2^3 / 2^20
    }

    #[test]
    fn regions_interleave_across_clients() {
        let c = Cyclic {
            clients: 4,
            accesses_per_client: 3,
            aggregate_bytes: 120,
        };
        // access size 10; client k's i-th region at (i*40 + k*10, 10).
        let r1 = c.request_for(1).unwrap();
        let offs: Vec<u64> = r1.file.iter().map(|r| r.offset).collect();
        assert_eq!(offs, vec![10, 50, 90]);
        assert_eq!(r1.total_len(), 30);
        assert!(r1.file.is_sorted_disjoint());
    }

    #[test]
    fn clients_partition_the_file_exactly() {
        let c = Cyclic {
            clients: 4,
            accesses_per_client: 8,
            aggregate_bytes: 1024,
        };
        let mut coverage = vec![false; 1024];
        for k in 0..4 {
            let req = c.request_for(k).unwrap();
            for r in req.file.iter() {
                for b in r.offset..r.end() {
                    assert!(!coverage[b as usize], "byte {b} claimed twice");
                    coverage[b as usize] = true;
                }
            }
        }
        assert!(coverage.iter().all(|c| *c), "file fully covered");
    }

    #[test]
    fn more_accesses_means_smaller_pieces_same_total() {
        let coarse = Cyclic {
            clients: 8,
            accesses_per_client: 64,
            aggregate_bytes: 1 << 20,
        };
        let fine = Cyclic {
            clients: 8,
            accesses_per_client: 2048,
            aggregate_bytes: 1 << 20,
        };
        let rc = coarse.request_for(0).unwrap();
        let rf = fine.request_for(0).unwrap();
        assert_eq!(rc.total_len(), rf.total_len());
        assert_eq!(rf.file.count(), 32 * rc.file.count());
        assert!(coarse.access_size().unwrap() > fine.access_size().unwrap());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Cyclic {
            clients: 0,
            accesses_per_client: 1,
            aggregate_bytes: 100
        }
        .access_size()
        .is_err());
        assert!(Cyclic {
            clients: 3,
            accesses_per_client: 7,
            aggregate_bytes: 100
        }
        .access_size()
        .is_err());
        let c = Cyclic {
            clients: 2,
            accesses_per_client: 2,
            aggregate_bytes: 8,
        };
        assert!(c.request_for(2).is_err());
    }

    #[test]
    fn memory_is_contiguous() {
        let c = Cyclic {
            clients: 2,
            accesses_per_client: 4,
            aggregate_bytes: 64,
        };
        let r = c.request_for(0).unwrap();
        assert_eq!(r.mem.count(), 1);
        assert_eq!(r.mem.total_len(), 32);
    }
}
