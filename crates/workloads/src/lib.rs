//! The paper's benchmark access patterns as [`ListRequest`] generators.
//!
//! * [`cyclic`] — the artificial benchmark's one-dimensional cyclic
//!   pattern (Fig. 7): interleaved column ownership of a 2-D array
//!   flattened to 1-D.
//! * [`blockblock`] — the artificial benchmark's two-dimensional
//!   block-block pattern (Fig. 8): each client owns one block of the
//!   global array.
//! * [`flash`] — the FLASH I/O checkpoint write (Figs. 13/14):
//!   noncontiguous in memory *and* file; 8-byte memory fragments into
//!   4096-byte file chunks, var-major file layout.
//! * [`tiled`] — the tiled visualization read (Fig. 16): a 3×2 display
//!   wall with overlapping tiles reading one large frame.
//! * [`strided`] — CHARISMA-style simple/nested-strided patterns (the
//!   paper's ref [7]), expressible both as region lists and datatypes.
//!
//! Every generator returns plain [`ListRequest`]s so any access method
//! can service them, plus the derived quantities the paper quotes
//! (region counts, bytes per access, file sizes) for the harness to
//! assert against.
//!
//! [`ListRequest`]: pvfs_core::ListRequest

pub mod blockblock;
pub mod cyclic;
pub mod flash;
pub mod strided;
pub mod tiled;
pub mod verify;

pub use blockblock::BlockBlock;
pub use cyclic::Cyclic;
pub use flash::FlashIo;
pub use strided::{NestedStrided, StrideLevel};
pub use tiled::TiledViz;
