//! The FLASH I/O checkpoint write (§4.3, Figs. 13 & 14).
//!
//! FLASH is an adaptive-mesh hydrodynamics code; its checkpoint dumps
//! the element data of every mesh block on every processor. The
//! benchmark reproduces the I/O pattern without the solver:
//!
//! * **Memory** (Fig. 13): each processor holds 80 blocks; a block is an
//!   8×8×8 cube of *elements* surrounded by guard cells, and each
//!   element carries 24 double-precision variables stored contiguously.
//!   The checkpoint writes variable-by-variable, so each contiguous
//!   memory fragment is a *single 8-byte double* — the 24-variable
//!   interleaving splits everything else.
//! * **File** (Fig. 14): variable-major. All of variable 0, then
//!   variable 1, …; within a variable, 80 block slots; within a block
//!   slot, one 8×8×8×8-byte = 4096-byte chunk *per processor*.
//!
//! Paper-quoted derived quantities (asserted in tests):
//!
//! * contiguous memory regions: 80·8·8·8·24 = **983 040** per proc;
//! * contiguous file regions: 80·24 = **1920** of 4096 B per proc;
//! * multiple I/O: **983 040** requests/proc (one per aligned piece);
//! * list I/O: 1920/64 = **30** requests/proc;
//! * data per proc: **7 864 320 bytes** (7.5 MB), file grows 7.5 MB per
//!   added client.
//!
//! **Substitution note:** real FLASH uses 4 guard cells per side
//! (16³ blocks in memory); we default to 1 (10³) to keep simulated
//! client buffers small. Guard thickness only changes the *gaps*
//! between memory fragments — fragment count, file layout and all the
//! quantities above are unaffected (a test pins this).

use pvfs_core::ListRequest;
use pvfs_types::{PvfsError, PvfsResult, Region, RegionList};

/// Elements per block edge (the 8×8×8 inner cube).
pub const NXB: u64 = 8;
/// Blocks per processor.
pub const BLOCKS: u64 = 80;
/// Variables per element.
pub const NVAR: u64 = 24;
/// Bytes per variable (double).
pub const VAR_BYTES: u64 = 8;

/// Parameters of a FLASH I/O run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashIo {
    /// Number of processors (the paper varies 2–32).
    pub nprocs: u64,
    /// Guard-cell thickness on each side of a block in memory
    /// (real FLASH: 4; default here: 1 — see module docs).
    pub nguard: u64,
    /// Mesh blocks per processor (paper: 80; reducible for scaled-down
    /// benchmark runs — every derived quantity scales linearly).
    pub blocks: u64,
}

impl FlashIo {
    /// The benchmark with the memory-lean guard default.
    pub fn new(nprocs: u64) -> FlashIo {
        FlashIo {
            nprocs,
            nguard: 1,
            blocks: BLOCKS,
        }
    }

    /// Full-fidelity FLASH guards (16³ memory blocks).
    pub fn with_real_guards(nprocs: u64) -> FlashIo {
        FlashIo {
            nprocs,
            nguard: 4,
            blocks: BLOCKS,
        }
    }

    /// A scaled-down run with fewer mesh blocks per processor.
    pub fn scaled(nprocs: u64, blocks: u64) -> FlashIo {
        FlashIo {
            nprocs,
            nguard: 1,
            blocks,
        }
    }

    /// Block edge including guards.
    fn gdim(&self) -> u64 {
        NXB + 2 * self.nguard
    }

    /// Bytes of one block in memory (all elements including guards,
    /// each with its 24 variables).
    pub fn block_mem_bytes(&self) -> u64 {
        let g = self.gdim();
        g * g * g * NVAR * VAR_BYTES
    }

    /// Size of one processor's memory buffer.
    pub fn mem_bytes(&self) -> u64 {
        self.blocks * self.block_mem_bytes()
    }

    /// Checkpoint bytes one processor contributes: §4.3.1's
    /// 7 864 320 bytes.
    pub fn data_bytes_per_proc(&self) -> u64 {
        self.blocks * NXB * NXB * NXB * NVAR * VAR_BYTES
    }

    /// Total checkpoint file size.
    pub fn file_size(&self) -> u64 {
        self.nprocs * self.data_bytes_per_proc()
    }

    /// Contiguous memory fragments per proc (983 040 in the paper).
    pub fn mem_region_count(&self) -> u64 {
        self.blocks * NXB * NXB * NXB * NVAR
    }

    /// Contiguous file regions per proc (1920 × 4096 B).
    pub fn file_region_count(&self) -> u64 {
        self.blocks * NVAR
    }

    /// Memory offset of variable `v` of element `(x, y, z)` of block
    /// `b` (guard cells offset the element coordinates).
    fn mem_offset(&self, b: u64, z: u64, y: u64, x: u64, v: u64) -> u64 {
        let g = self.gdim();
        let ex = x + self.nguard;
        let ey = y + self.nguard;
        let ez = z + self.nguard;
        let elem = (ez * g + ey) * g + ex;
        b * self.block_mem_bytes() + elem * NVAR * VAR_BYTES + v * VAR_BYTES
    }

    /// File offset of the 4096-byte chunk `(variable v, block b)` of
    /// processor `p` (Fig. 14's var → block → proc nesting).
    pub fn file_chunk_offset(&self, v: u64, b: u64, p: u64) -> u64 {
        let chunk = NXB * NXB * NXB * VAR_BYTES; // 4096
        ((v * self.blocks + b) * self.nprocs + p) * chunk
    }

    /// The checkpoint-write request of processor `rank`: noncontiguous
    /// in memory *and* file. Memory regions are emitted in file-stream
    /// order so the two lists pair positionally.
    pub fn request_for(&self, rank: u64) -> PvfsResult<ListRequest> {
        if rank >= self.nprocs {
            return Err(PvfsError::invalid(format!(
                "rank {rank} out of range for {} procs",
                self.nprocs
            )));
        }
        let mut file = RegionList::with_capacity(self.file_region_count() as usize);
        let mut mem = RegionList::with_capacity(self.mem_region_count() as usize);
        let chunk = NXB * NXB * NXB * VAR_BYTES;
        for v in 0..NVAR {
            for b in 0..self.blocks {
                file.push(Region::new(self.file_chunk_offset(v, b, rank), chunk));
                // The chunk's bytes come from the block's elements in
                // z, y, x order — one 8-byte double each.
                for z in 0..NXB {
                    for y in 0..NXB {
                        for x in 0..NXB {
                            mem.push(Region::new(self.mem_offset(b, z, y, x, v), VAR_BYTES));
                        }
                    }
                }
            }
        }
        ListRequest::new(mem, file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_quantities() {
        let f = FlashIo::new(4);
        assert_eq!(f.mem_region_count(), 983_040);
        assert_eq!(f.file_region_count(), 1920);
        assert_eq!(f.data_bytes_per_proc(), 7_864_320);
        // "Every additional compute node adds an additional 7.5 MBytes".
        assert_eq!(
            FlashIo::new(5).file_size() - FlashIo::new(4).file_size() * 5 / 4,
            0
        );
        assert_eq!(f.file_size(), 4 * 7_864_320);
    }

    #[test]
    fn request_shape_matches_formulas() {
        let f = FlashIo::new(2);
        let r = f.request_for(0).unwrap();
        assert_eq!(r.file.count() as u64, f.file_region_count());
        assert_eq!(r.mem.count() as u64, f.mem_region_count());
        assert_eq!(r.total_len(), f.data_bytes_per_proc());
        assert!(r.file.is_sorted_disjoint());
        // Every file region is one 4096-byte chunk.
        assert!(r.file.iter().all(|reg| reg.len == 4096));
        // Every memory region is one 8-byte double.
        assert!(r.mem.iter().all(|reg| reg.len == 8));
    }

    #[test]
    fn file_layout_is_var_major_with_proc_interleave() {
        let f = FlashIo::new(2);
        // Proc 0 block 0 var 0 at offset 0; proc 1's same chunk right
        // after; then block 1.
        assert_eq!(f.file_chunk_offset(0, 0, 0), 0);
        assert_eq!(f.file_chunk_offset(0, 0, 1), 4096);
        assert_eq!(f.file_chunk_offset(0, 1, 0), 8192);
        // Variable 1 starts after all 80 blocks × 2 procs of var 0.
        assert_eq!(f.file_chunk_offset(1, 0, 0), 80 * 2 * 4096);
    }

    #[test]
    fn procs_partition_the_checkpoint() {
        let f = FlashIo::new(3);
        let mut seen = std::collections::HashSet::new();
        for p in 0..3 {
            for reg in f.request_for(p).unwrap().file.iter() {
                assert!(seen.insert(reg.offset), "chunk {reg} claimed twice");
                assert_eq!(reg.offset % 4096, 0);
            }
        }
        assert_eq!(seen.len() as u64, 3 * f.file_region_count());
        assert_eq!(seen.iter().max().copied().unwrap() + 4096, f.file_size());
    }

    #[test]
    fn memory_fragments_are_24_vars_apart() {
        let f = FlashIo::new(1);
        let r = f.request_for(0).unwrap();
        // Within one chunk, consecutive fragments (x neighbours) are
        // spaced by the 24-variable element size: 192 bytes.
        let m0 = r.mem.regions()[0];
        let m1 = r.mem.regions()[1];
        assert_eq!(m1.offset - m0.offset, NVAR * VAR_BYTES);
    }

    #[test]
    fn guard_thickness_does_not_change_the_shape() {
        let lean = FlashIo::new(2);
        let real = FlashIo::with_real_guards(2);
        let rl = lean.request_for(1).unwrap();
        let rr = real.request_for(1).unwrap();
        // Identical file lists.
        assert_eq!(rl.file, rr.file);
        // Same fragment count and sizes in memory; only gaps differ.
        assert_eq!(rl.mem.count(), rr.mem.count());
        assert_eq!(rl.mem.total_len(), rr.mem.total_len());
        // Memory buffers differ in size (16³ vs 10³ blocks).
        assert!(real.mem_bytes() > lean.mem_bytes());
        assert_eq!(real.block_mem_bytes(), 16 * 16 * 16 * 192);
        assert_eq!(lean.block_mem_bytes(), 10 * 10 * 10 * 192);
    }

    #[test]
    fn guard_cells_are_never_written() {
        let f = FlashIo::new(1);
        let r = f.request_for(0).unwrap();
        let g = f.gdim();
        for reg in r.mem.iter().take(2000) {
            let within_block = reg.offset % f.block_mem_bytes();
            let elem = within_block / (NVAR * VAR_BYTES);
            let x = elem % g;
            let y = (elem / g) % g;
            let z = elem / (g * g);
            for c in [x, y, z] {
                assert!(
                    c >= f.nguard && c < f.nguard + NXB,
                    "guard element {elem} written"
                );
            }
        }
    }

    #[test]
    fn out_of_range_rank_rejected() {
        assert!(FlashIo::new(2).request_for(2).is_err());
    }
}
