//! The tiled visualization read (§4.4, Fig. 16).
//!
//! A display wall shows one large frame split across an array of
//! displays; each compute node drives one display and reads its tile
//! from the shared frame file. The paper's configuration: a **3 × 2**
//! wall of **1024 × 768** displays at **24-bit** color with a **270-
//! pixel horizontal** and **128-pixel vertical** overlap between
//! neighbouring tiles, giving a frame of 2532 × 1408 pixels ≈ 10.2 MiB.
//! Each tile row is one contiguous file region ⇒ **768 regions** per
//! client ⇒ 768 multiple-I/O requests vs ⌈768/64⌉ = **12** list-I/O
//! requests (§4.4.1).

use pvfs_core::ListRequest;
use pvfs_types::{PvfsError, PvfsResult, RegionList};

/// Parameters of a tiled-visualization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TiledViz {
    /// Display columns.
    pub tiles_x: u64,
    /// Display rows.
    pub tiles_y: u64,
    /// Pixels per display, horizontally.
    pub display_w: u64,
    /// Pixels per display, vertically.
    pub display_h: u64,
    /// Horizontal overlap between adjacent displays (pixels).
    pub overlap_x: u64,
    /// Vertical overlap between adjacent displays (pixels).
    pub overlap_y: u64,
    /// Bytes per pixel.
    pub bytes_per_pixel: u64,
}

impl TiledViz {
    /// The paper's 3×2, 1024×768@24bit, 270/128-pixel overlap setup.
    pub fn paper() -> TiledViz {
        TiledViz {
            tiles_x: 3,
            tiles_y: 2,
            display_w: 1024,
            display_h: 768,
            overlap_x: 270,
            overlap_y: 128,
            bytes_per_pixel: 3,
        }
    }

    /// Number of clients (one per display).
    pub fn clients(&self) -> u64 {
        self.tiles_x * self.tiles_y
    }

    /// Frame width in pixels.
    pub fn frame_w(&self) -> u64 {
        self.tiles_x * self.display_w - (self.tiles_x - 1) * self.overlap_x
    }

    /// Frame height in pixels.
    pub fn frame_h(&self) -> u64 {
        self.tiles_y * self.display_h - (self.tiles_y - 1) * self.overlap_y
    }

    /// Frame file size in bytes.
    pub fn file_size(&self) -> u64 {
        self.frame_w() * self.frame_h() * self.bytes_per_pixel
    }

    /// File regions per client (one per tile row).
    pub fn regions_per_client(&self) -> u64 {
        self.display_h
    }

    fn validate(&self) -> PvfsResult<()> {
        if self.tiles_x == 0 || self.tiles_y == 0 || self.display_w == 0 || self.display_h == 0 {
            return Err(PvfsError::invalid("degenerate tiling"));
        }
        if self.overlap_x >= self.display_w || self.overlap_y >= self.display_h {
            return Err(PvfsError::invalid("overlap larger than a display"));
        }
        Ok(())
    }

    /// The read request of the client driving tile `rank` (row-major
    /// over the wall): one contiguous file region per display row,
    /// contiguous destination memory (the framebuffer of that display).
    pub fn request_for(&self, rank: u64) -> PvfsResult<ListRequest> {
        self.validate()?;
        if rank >= self.clients() {
            return Err(PvfsError::invalid(format!(
                "rank {rank} out of range for {} displays",
                self.clients()
            )));
        }
        let (ty, tx) = (rank / self.tiles_x, rank % self.tiles_x);
        let x0 = tx * (self.display_w - self.overlap_x);
        let y0 = ty * (self.display_h - self.overlap_y);
        let row_bytes = self.frame_w() * self.bytes_per_pixel;
        let tile_row_bytes = self.display_w * self.bytes_per_pixel;
        let file = RegionList::from_pairs((0..self.display_h).map(|r| {
            (
                (y0 + r) * row_bytes + x0 * self.bytes_per_pixel,
                tile_row_bytes,
            )
        }))?;
        Ok(ListRequest::gather(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_frame_geometry() {
        let t = TiledViz::paper();
        assert_eq!(t.clients(), 6);
        assert_eq!(t.frame_w(), 2532);
        assert_eq!(t.frame_h(), 1408);
        // "bringing the file size to about 10.2 MBytes"
        assert_eq!(t.file_size(), 10_695_168);
        assert!((t.file_size() as f64 / (1024.0 * 1024.0) - 10.2).abs() < 0.01);
    }

    #[test]
    fn paper_request_counts() {
        let t = TiledViz::paper();
        let r = t.request_for(0).unwrap();
        // "Multiple I/O requires 768 I/O requests"
        assert_eq!(r.file.count(), 768);
        // "list I/O will need to perform a minimal number (768/64 = 12)"
        assert_eq!(r.file.count().div_ceil(64), 12);
        // Each row is 1024 px × 3 B.
        assert!(r.file.iter().all(|reg| reg.len == 3072));
        assert_eq!(r.total_len(), 768 * 3072);
        assert!(r.file.is_sorted_disjoint());
    }

    #[test]
    fn overlapping_tiles_share_file_bytes() {
        let t = TiledViz::paper();
        let left = t.request_for(0).unwrap();
        let right = t.request_for(1).unwrap();
        // Tile 1 starts 754 pixels in: its first region overlaps tile
        // 0's first region by 270 px.
        let l0 = left.file.regions()[0];
        let r0 = right.file.regions()[0];
        assert_eq!(r0.offset, (1024 - 270) * 3);
        assert!(l0.overlaps(r0));
        assert_eq!(l0.intersect(r0).unwrap().len, 270 * 3);
    }

    #[test]
    fn bottom_row_tiles_offset_vertically() {
        let t = TiledViz::paper();
        let bottom_left = t.request_for(3).unwrap();
        let row_bytes = t.frame_w() * 3;
        assert_eq!(
            bottom_left.file.regions()[0].offset,
            (768 - 128) * row_bytes
        );
    }

    #[test]
    fn last_tile_stays_inside_file() {
        let t = TiledViz::paper();
        let last = t.request_for(5).unwrap();
        assert!(last.file.extent().unwrap().end() <= t.file_size());
    }

    #[test]
    fn sieving_wastes_two_thirds_for_interior_tiles() {
        // §4.4.1: "the client will end up using only a fraction
        // (1 / number of tiles in the x direction, for this case 1/3)
        // of the actual data read."
        let t = TiledViz::paper();
        let r = t.request_for(0).unwrap();
        let extent = r.file.extent().unwrap().len;
        let useful = r.total_len();
        let fraction = useful as f64 / extent as f64;
        assert!((0.30..0.45).contains(&fraction), "fraction {fraction}");
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut t = TiledViz::paper();
        t.overlap_x = 1024;
        assert!(t.request_for(0).is_err());
        assert!(TiledViz::paper().request_for(6).is_err());
    }
}
