//! Nested-strided access patterns.
//!
//! The workload characterization studies the paper builds on
//! (Nieuwejaar & Kotz's CHARISMA project, the paper's ref [7]) found
//! that parallel scientific codes overwhelmingly issue *simple-strided*
//! and *nested-strided* accesses: fixed-size blocks at one or more
//! levels of regular stride — exactly the shape of a column sweep over
//! a multi-dimensional array. This generator produces those patterns
//! and, because they are regular, can also express them as a nested
//! [`Datatype`] — the two descriptions flatten identically (tested),
//! which is the bridge between the paper's list interface and its §5
//! datatype proposal.

use pvfs_core::ListRequest;
use pvfs_types::{Datatype, PvfsError, PvfsResult, Region, RegionList};

/// One stride level: `count` repetitions spaced `stride` bytes apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideLevel {
    /// Repetitions at this level.
    pub count: u64,
    /// Bytes between consecutive repetitions' starts.
    pub stride: u64,
}

/// A nested-strided pattern: `levels` from outermost to innermost, each
/// placing the next level at a regular stride, with `block` contiguous
/// bytes at the innermost position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedStrided {
    /// Starting file offset.
    pub base: u64,
    /// Stride levels, outermost first. Empty means one plain block.
    pub levels: Vec<StrideLevel>,
    /// Contiguous bytes at each innermost position.
    pub block: u64,
}

impl NestedStrided {
    /// Simple-strided pattern (one level) — CHARISMA's most common
    /// shape.
    pub fn simple(base: u64, count: u64, block: u64, stride: u64) -> NestedStrided {
        NestedStrided {
            base,
            levels: vec![StrideLevel { count, stride }],
            block,
        }
    }

    /// A column sweep over a row-major 2-D array of `rows × row_bytes`,
    /// reading `col_bytes` from each row.
    pub fn column(base: u64, rows: u64, row_bytes: u64, col_bytes: u64) -> NestedStrided {
        NestedStrided::simple(base, rows, col_bytes, row_bytes)
    }

    /// The span one instance of level `i..` occupies.
    fn span_from(&self, i: usize) -> u64 {
        if i == self.levels.len() {
            return self.block;
        }
        let l = self.levels[i];
        if l.count == 0 {
            0
        } else {
            (l.count - 1) * l.stride + self.span_from(i + 1)
        }
    }

    /// Total data bytes selected.
    pub fn total_len(&self) -> u64 {
        self.levels.iter().map(|l| l.count).product::<u64>() * self.block
    }

    /// Number of contiguous file regions.
    pub fn region_count(&self) -> u64 {
        self.levels.iter().map(|l| l.count).product()
    }

    /// Validate: every level's stride must cover the inner span, so
    /// regions never overlap and stay sorted.
    pub fn validate(&self) -> PvfsResult<()> {
        if self.block == 0 {
            return Err(PvfsError::invalid("zero block size"));
        }
        for (i, l) in self.levels.iter().enumerate() {
            if l.count == 0 {
                return Err(PvfsError::invalid(format!("level {i} has zero count")));
            }
            if l.count > 1 && l.stride < self.span_from(i + 1) {
                return Err(PvfsError::invalid(format!(
                    "level {i} stride {} overlaps inner span {}",
                    l.stride,
                    self.span_from(i + 1)
                )));
            }
        }
        Ok(())
    }

    /// Expand to the sorted, disjoint file region list.
    pub fn regions(&self) -> PvfsResult<RegionList> {
        self.validate()?;
        let mut offsets = vec![self.base];
        for (i, l) in self.levels.iter().enumerate() {
            let _ = i;
            let mut next = Vec::with_capacity(offsets.len() * l.count as usize);
            for base in offsets {
                for k in 0..l.count {
                    next.push(base + k * l.stride);
                }
            }
            offsets = next;
        }
        offsets.sort_unstable();
        let mut list = RegionList::with_capacity(offsets.len());
        for o in offsets {
            list.push(Region::new(o, self.block));
        }
        // Merge adjacency (stride == block at the innermost level).
        Ok(list.coalesced())
    }

    /// The same pattern as a nested MPI-like datatype.
    pub fn datatype(&self) -> Datatype {
        let mut t = Datatype::Bytes(self.block);
        for l in self.levels.iter().rev() {
            t = Datatype::Vector {
                count: l.count,
                blocklen: 1,
                stride: l.stride,
                child: Box::new(t),
            };
        }
        t
    }

    /// The gather request (contiguous memory) for this pattern.
    pub fn request(&self) -> PvfsResult<ListRequest> {
        Ok(ListRequest::gather(self.regions()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_strided_expansion() {
        let p = NestedStrided::simple(100, 4, 8, 32);
        let r = p.regions().unwrap();
        assert_eq!(
            r.regions(),
            &[
                Region::new(100, 8),
                Region::new(132, 8),
                Region::new(164, 8),
                Region::new(196, 8)
            ]
        );
        assert_eq!(p.total_len(), 32);
        assert_eq!(p.region_count(), 4);
    }

    #[test]
    fn column_sweep_matches_manual_construction() {
        // 8 rows of 64 bytes, reading 4 bytes per row.
        let p = NestedStrided::column(0, 8, 64, 4);
        let r = p.regions().unwrap();
        assert_eq!(r.count(), 8);
        assert_eq!(r.regions()[3], Region::new(192, 4));
    }

    #[test]
    fn two_level_nesting() {
        // Outer: 3 planes every 1000; inner: 4 rows every 100; 16-byte
        // blocks.
        let p = NestedStrided {
            base: 0,
            levels: vec![
                StrideLevel {
                    count: 3,
                    stride: 1000,
                },
                StrideLevel {
                    count: 4,
                    stride: 100,
                },
            ],
            block: 16,
        };
        let r = p.regions().unwrap();
        assert_eq!(r.count(), 12);
        assert_eq!(r.regions()[0], Region::new(0, 16));
        assert_eq!(r.regions()[4], Region::new(1000, 16));
        assert_eq!(r.regions()[11], Region::new(2300, 16));
        assert!(r.is_sorted_disjoint());
    }

    #[test]
    fn datatype_flattens_to_the_same_regions() {
        let p = NestedStrided {
            base: 0,
            levels: vec![
                StrideLevel {
                    count: 5,
                    stride: 4096,
                },
                StrideLevel {
                    count: 3,
                    stride: 512,
                },
            ],
            block: 64,
        };
        let via_regions = p.regions().unwrap();
        let via_datatype = p.datatype().flatten(p.base);
        assert_eq!(via_regions, via_datatype);
        assert_eq!(p.datatype().size(), p.total_len());
    }

    #[test]
    fn adjacent_blocks_coalesce() {
        // Stride == block: one contiguous run.
        let p = NestedStrided::simple(0, 16, 8, 8);
        let r = p.regions().unwrap();
        assert_eq!(r.count(), 1);
        assert_eq!(r.regions()[0], Region::new(0, 128));
    }

    #[test]
    fn overlapping_strides_rejected() {
        let p = NestedStrided::simple(0, 4, 16, 8);
        assert!(p.validate().is_err());
        let p = NestedStrided {
            base: 0,
            levels: vec![
                StrideLevel {
                    count: 2,
                    stride: 100,
                }, // inner span 3*64=192 > 100
                StrideLevel {
                    count: 3,
                    stride: 64,
                },
            ],
            block: 16,
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn degenerate_patterns_rejected() {
        assert!(NestedStrided::simple(0, 0, 8, 32).validate().is_err());
        assert!(NestedStrided::simple(0, 4, 0, 32).validate().is_err());
    }

    #[test]
    fn request_has_contiguous_memory() {
        let p = NestedStrided::simple(0, 10, 8, 100);
        let req = p.request().unwrap();
        assert_eq!(req.mem.count(), 1);
        assert_eq!(req.total_len(), 80);
        req.validate().unwrap();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_pattern() -> impl Strategy<Value = NestedStrided> {
        (1u64..32, 1u64..6, 1u64..5, 0u64..1000).prop_map(|(block, c1, c2, base)| {
            // Build strides that always cover inner spans.
            let inner_span = block;
            let s2 = inner_span + (block % 7);
            let inner_total = (c2 - 1) * s2 + block;
            let s1 = inner_total + 13;
            NestedStrided {
                base,
                levels: vec![
                    StrideLevel {
                        count: c1,
                        stride: s1,
                    },
                    StrideLevel {
                        count: c2,
                        stride: s2,
                    },
                ],
                block,
            }
        })
    }

    proptest! {
        #[test]
        fn regions_match_datatype_flatten(p in arb_pattern()) {
            prop_assert!(p.validate().is_ok());
            let via_regions = p.regions().unwrap();
            let via_datatype = p.datatype().flatten(p.base);
            prop_assert_eq!(via_regions, via_datatype);
        }

        #[test]
        fn totals_are_consistent(p in arb_pattern()) {
            let r = p.regions().unwrap();
            prop_assert_eq!(r.total_len(), p.total_len());
            prop_assert!(r.count() as u64 <= p.region_count());
            prop_assert!(r.is_sorted_disjoint());
        }
    }
}
