//! Content oracles for end-to-end verification.
//!
//! Read benchmarks seed files with a deterministic byte function so any
//! client can verify any region it reads without holding the whole file.

/// The canonical content byte at file offset `off` (cheap, collision-
/// resistant enough to catch off-by-one and wrong-server bugs).
pub fn byte_at(off: u64) -> u8 {
    let x = off
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
        .wrapping_add(off >> 7);
    (x ^ (x >> 32)) as u8
}

/// Fill `buf` with the canonical content starting at `offset`.
pub fn fill(offset: u64, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = byte_at(offset + i as u64);
    }
}

/// The canonical content of `[offset, offset + len)` as a vector.
pub fn content(offset: u64, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    fill(offset, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(byte_at(12345), byte_at(12345));
        assert_eq!(content(100, 16), content(100, 16));
    }

    #[test]
    fn offset_sensitive() {
        // Adjacent offsets rarely collide; a shifted window must differ.
        let a = content(0, 64);
        let b = content(1, 64);
        assert_ne!(a, b);
        assert_eq!(&a[1..], &b[..63]);
    }

    #[test]
    fn fill_matches_content() {
        let mut buf = vec![0u8; 32];
        fill(777, &mut buf);
        assert_eq!(buf, content(777, 32));
    }

    #[test]
    fn bytes_are_well_distributed() {
        let sample = content(0, 4096);
        let mut counts = [0u32; 256];
        for b in &sample {
            counts[*b as usize] += 1;
        }
        let nonzero = counts.iter().filter(|c| **c > 0).count();
        assert!(nonzero > 200, "only {nonzero} distinct bytes in 4 KiB");
    }
}
