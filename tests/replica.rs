//! Replicated stripes end to end: r-way mirroring, failover reads,
//! quorum writes, and anti-entropy repair (`scrub`).
//!
//! The acceptance contract of the replication subsystem: at
//! `PVFS_REPLICAS=2`, killing any single I/O daemon leaves every read
//! byte-exact (served by the surviving mirror, with no retry storms),
//! and a subsequent restart + scrub drives every `StripeDigest`
//! comparison back to equality — over both the channel and TCP
//! transports, and indistinguishably between the memory and file
//! storage backends.
//!
//! "Kill" here is a total frame drop aimed at one daemon (the
//! programmatic `PVFS_FAULTS` plan): every request to it vanishes and
//! times out, exactly what a dead node looks like from the client.
//! "Restart" talks to the same daemon through a fault-free client —
//! transports are wrapped per-client, so a pre-kill client doubles as
//! the post-restart one.

use proptest::prelude::*;
use pvfs::client::{replicas_converged, scrub_file_with_chunk, PvfsFile};
use pvfs::collective::{CollectiveFile, Communicator};
use pvfs::core::Method;
use pvfs::disk::{ScratchDir, StorageConfig, SyncPolicy};
use pvfs::net::{ClusterClient, FaultPlan, LiveCluster, ReplicaPolicy, TransportKind, WriteQuorum};
use pvfs::server::IodConfig;
use pvfs::types::{Region, RegionList, ServerId, StripeLayout};
use std::time::Duration;

/// Digest granularity small enough that the tiny test files span
/// several chunks per slot.
const CHUNK: u64 = 64;

fn rclient(cluster: &LiveCluster, replicas: u32, quorum: WriteQuorum) -> ClusterClient {
    let policy = ReplicaPolicy::new(replicas, quorum, cluster.n_servers()).unwrap();
    cluster
        .client()
        .with_replica_policy(policy)
        .with_rpc_timeout(Duration::from_millis(250))
}

fn strided(offset: u64, count: u64, len: u64, stride: u64) -> RegionList {
    RegionList::from_pairs((0..count).map(|i| (offset + i * stride, len))).unwrap()
}

/// r=2 write/read roundtrip on a healthy cluster: every method stays
/// byte-exact, the mirrors converge without repair, and a scrub finds
/// nothing to do.
fn roundtrip_clean(kind: TransportKind) {
    let cluster = LiveCluster::spawn_transport(4, IodConfig::default(), kind);
    let client = rclient(&cluster, 2, WriteQuorum::All);
    let layout = StripeLayout::new(0, 4, 64).unwrap();
    let mut f = PvfsFile::create(&client, "/pvfs/r2", layout).unwrap();

    let data: Vec<u8> = (0..1600u32).map(|i| (i % 251) as u8).collect();
    f.write_at(0, &data).unwrap();
    let pattern = strided(32, 12, 16, 96);
    let mem = RegionList::contiguous(0, pattern.total_len());
    let fill = vec![0xd7u8; pattern.total_len() as usize];
    let report = f.write_list(&mem, &pattern, &fill, Method::List).unwrap();
    assert_eq!(
        report.quorum_shortfalls, 0,
        "healthy writes reach all copies"
    );

    let mut expect = data.clone();
    for r in pattern.iter() {
        expect[r.offset as usize..r.end() as usize].fill(0xd7);
    }
    let mut got = vec![0u8; expect.len()];
    f.read_at(0, &mut got).unwrap();
    assert_eq!(got, expect, "replicated roundtrip diverged");
    assert_eq!(f.size().unwrap(), expect.len() as u64);

    assert!(replicas_converged(&client, f.handle(), &layout, CHUNK).unwrap());
    let scrub = scrub_file_with_chunk(&client, f.handle(), &layout, CHUNK).unwrap();
    assert!(scrub.clean(), "healthy mirrors need no repair: {scrub:?}");
    assert_eq!(scrub.slots_scanned, 4);
    assert!(scrub.digests_compared > 0, "digests were fetched");
}

#[test]
fn replicated_roundtrip_is_clean_over_chan() {
    roundtrip_clean(TransportKind::Chan);
}

#[test]
fn replicated_roundtrip_is_clean_over_tcp() {
    roundtrip_clean(TransportKind::Tcp);
}

/// The failover acceptance bar: kill each daemon in turn (fresh r=2
/// cluster each time); every read stays byte-exact off the surviving
/// mirrors, with zero retries and every logical sub-request landing on
/// a live daemon exactly once (frame counters pinned — no storms).
fn kill_one_daemon_reads_survive(kind: TransportKind) {
    for dead in 0..3u32 {
        let mut cluster = LiveCluster::spawn_transport(3, IodConfig::default(), kind);
        let layout = StripeLayout::new(0, 3, 64).unwrap();
        let data: Vec<u8> = (0..1200u32).map(|i| (i as u8) ^ 0x5a).collect();
        {
            let healthy = rclient(&cluster, 2, WriteQuorum::All);
            let mut f = PvfsFile::create(&healthy, "/pvfs/kill", layout).unwrap();
            f.write_at(0, &data).unwrap();
        }

        cluster.inject_faults(FaultPlan {
            drop: 1.0,
            target: Some(dead),
            ..FaultPlan::default()
        });
        let degraded = rclient(&cluster, 2, WriteQuorum::All);
        let survivors: Vec<u32> = (0..3).filter(|s| *s != dead).collect();
        let frames_before: u64 = survivors
            .iter()
            .map(|s| cluster.server_stats(ServerId(*s)).unwrap().frames_rx)
            .sum();

        let mut f = PvfsFile::open(&degraded, "/pvfs/kill").unwrap();
        let mut got = vec![0u8; data.len()];
        let report = f.read_at(0, &mut got).unwrap();
        assert_eq!(got, data, "kill {dead} ({kind:?}): read diverged");

        let stats = degraded.stats();
        assert!(
            stats.replica_failovers > 0,
            "kill {dead}: reads aimed at the dead daemon must fail over"
        );
        assert_eq!(stats.retries, 0, "failover must not consume retries");
        // Dropped frames never arrive anywhere; failover re-aims land
        // once. So the survivors together see exactly one frame per
        // logical read sub-request — a retry storm would break this.
        let frames_after: u64 = survivors
            .iter()
            .map(|s| cluster.server_stats(ServerId(*s)).unwrap().frames_rx)
            .sum();
        assert_eq!(
            frames_after - frames_before,
            report.requests,
            "kill {dead} ({kind:?}): surviving daemons saw extra frames"
        );
    }
}

#[test]
fn killing_any_single_daemon_keeps_reads_byte_exact_over_chan() {
    kill_one_daemon_reads_survive(TransportKind::Chan);
}

#[test]
fn killing_any_single_daemon_keeps_reads_byte_exact_over_tcp() {
    kill_one_daemon_reads_survive(TransportKind::Tcp);
}

/// Write availability under failure: at r=3 a majority quorum (2 of 3)
/// keeps writes succeeding with one daemon dead — each recorded as a
/// quorum shortfall — and after the "restart", scrub re-syncs the
/// divergent copy and every digest comparison returns to equality.
fn majority_writes_survive_then_scrub_heals(kind: TransportKind) {
    let mut cluster = LiveCluster::spawn_transport(3, IodConfig::default(), kind);
    let layout = StripeLayout::new(0, 3, 64).unwrap();
    // Built before the fault layer: this client always reaches every
    // daemon, standing in for the cluster after the node comes back.
    let healthy = rclient(&cluster, 3, WriteQuorum::Majority);
    let mut f = PvfsFile::create(&healthy, "/pvfs/maj", layout).unwrap();
    let phase1: Vec<u8> = vec![0x11; 900];
    f.write_at(0, &phase1).unwrap();
    assert!(replicas_converged(&healthy, f.handle(), &layout, CHUNK).unwrap());

    let dead = 1u32;
    cluster.inject_faults(FaultPlan {
        drop: 1.0,
        target: Some(dead),
        ..FaultPlan::default()
    });
    let degraded = rclient(&cluster, 3, WriteQuorum::Majority);
    let mut fd = PvfsFile::open(&degraded, "/pvfs/maj").unwrap();
    let pattern = strided(0, 10, 24, 88);
    let mem = RegionList::contiguous(0, pattern.total_len());
    let fill = vec![0xeeu8; pattern.total_len() as usize];
    fd.write_list(&mem, &pattern, &fill, Method::List).unwrap();
    let stats = degraded.stats();
    assert!(
        stats.quorum_shortfalls > 0,
        "writes that missed the dead copy must be recorded"
    );

    // The daemon "comes back": through the fault-free client its copies
    // are stale — scrub must find and repair the divergence.
    assert!(!replicas_converged(&healthy, f.handle(), &layout, CHUNK).unwrap());
    let report = scrub_file_with_chunk(&healthy, f.handle(), &layout, CHUNK).unwrap();
    assert!(
        report.copies_divergent > 0,
        "stale copies found: {report:?}"
    );
    assert!(report.repair_bytes > 0, "stale spans rewritten: {report:?}");
    assert!(
        replicas_converged(&healthy, f.handle(), &layout, CHUNK).unwrap(),
        "scrub must drive every digest comparison to equality"
    );
    // And a second pass has nothing left to do.
    let again = scrub_file_with_chunk(&healthy, f.handle(), &layout, CHUNK).unwrap();
    assert!(again.clean(), "{again:?}");

    let mut expect = phase1.clone();
    for r in pattern.iter() {
        let end = r.end() as usize;
        if end > expect.len() {
            expect.resize(end, 0);
        }
        expect[r.offset as usize..end].fill(0xee);
    }
    let mut got = vec![0u8; expect.len()];
    f.read_at(0, &mut got).unwrap();
    assert_eq!(got, expect, "post-repair read diverged");
}

#[test]
fn majority_quorum_survives_kill_and_scrub_heals_over_chan() {
    majority_writes_survive_then_scrub_heals(TransportKind::Chan);
}

#[test]
fn majority_quorum_survives_kill_and_scrub_heals_over_tcp() {
    majority_writes_survive_then_scrub_heals(TransportKind::Tcp);
}

/// Disk loss + restart on the durable backend: wipe one daemon's data
/// directory between cluster incarnations. On restart that daemon
/// answers digests with version 0 and no bytes — never chosen as a
/// repair source — and scrub rebuilds its copies from the surviving
/// mirrors, byte for byte.
fn disk_loss_restart_scrub(kind: TransportKind) {
    let dir = ScratchDir::new("replica-repair");
    let layout = StripeLayout::new(0, 3, 64).unwrap();
    let storage = || StorageConfig::File {
        dir: dir.path().to_path_buf(),
        sync: SyncPolicy::Interval(Duration::ZERO),
    };
    let data: Vec<u8> = (0..1500u32).map(|i| (i % 241) as u8).collect();
    {
        let cluster = LiveCluster::spawn_storage(3, IodConfig::default(), kind, storage());
        let client = rclient(&cluster, 2, WriteQuorum::All);
        let mut f = PvfsFile::create(&client, "/pvfs/loss", layout).unwrap();
        f.write_at(0, &data).unwrap();
        f.sync().unwrap();
        assert!(replicas_converged(&client, f.handle(), &layout, CHUNK).unwrap());
    }

    // The "disk" of daemon 2 dies with the cluster.
    let lost = dir.path().join("iod2");
    std::fs::remove_dir_all(&lost).expect("wipe iod2 storage");

    let cluster = LiveCluster::spawn_storage(3, IodConfig::default(), kind, storage());
    let client = rclient(&cluster, 2, WriteQuorum::All);
    // Fresh manager: recreate the namespace entry; the first handle is
    // deterministic, so it addresses the surviving on-disk stripes.
    let f = PvfsFile::create(&client, "/pvfs/loss", layout).unwrap();
    assert!(
        !replicas_converged(&client, f.handle(), &layout, CHUNK).unwrap(),
        "the wiped daemon must diverge"
    );
    let report = scrub_file_with_chunk(&client, f.handle(), &layout, CHUNK).unwrap();
    assert!(report.copies_divergent > 0, "{report:?}");
    assert!(report.repair_bytes > 0, "{report:?}");
    assert!(
        replicas_converged(&client, f.handle(), &layout, CHUNK).unwrap(),
        "scrub must rebuild the lost copies"
    );
    let mut f = f;
    let mut got = vec![0u8; data.len()];
    f.read_at(0, &mut got).unwrap();
    assert_eq!(got, data, "repaired file diverged from the original");
}

#[test]
fn disk_loss_restart_scrub_restores_equality_over_chan() {
    disk_loss_restart_scrub(TransportKind::Chan);
}

#[test]
fn disk_loss_restart_scrub_restores_equality_over_tcp() {
    disk_loss_restart_scrub(TransportKind::Tcp);
}

/// Collective two-phase I/O writes through the replica map: aggregator
/// wire traffic fans out to the mirrors like any other write, so a
/// collective write at r=2 leaves converged replicas and survives a
/// read with one daemon down.
#[test]
fn collective_two_phase_writes_through_the_replica_map() {
    let ranks = 4usize;
    let mut cluster = LiveCluster::spawn_with(4, IodConfig::default());
    let layout = StripeLayout::new(0, 4, 64).unwrap();
    let handles: Vec<_> = Communicator::group(ranks)
        .into_iter()
        .map(|comm| {
            let client = rclient(&cluster, 2, WriteQuorum::All);
            std::thread::spawn(move || {
                let rank = comm.rank();
                let mut cf = CollectiveFile::create(&client, "/pvfs/coll", layout, comm).unwrap();
                // 1-D cyclic: rank's records every `ranks` slots.
                let pattern = strided((rank as u64) * 32, 16, 32, (ranks as u64) * 32);
                let data = vec![0x40 + rank as u8; pattern.total_len() as usize];
                let mem = RegionList::contiguous(0, data.len() as u64);
                cf.write_all(&mem, &pattern, &data).unwrap();
                let mut back = vec![0u8; data.len()];
                cf.read_all(&mem, &pattern, &mut back).unwrap();
                assert_eq!(back, data, "rank {rank} collective roundtrip");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let client = rclient(&cluster, 2, WriteQuorum::All);
    let f = PvfsFile::open(&client, "/pvfs/coll").unwrap();
    assert!(
        replicas_converged(&client, f.handle(), &layout, CHUNK).unwrap(),
        "collective writes must reach the mirrors"
    );

    // One daemon dies; the collectively-written bytes stay readable.
    cluster.inject_faults(FaultPlan {
        drop: 1.0,
        target: Some(2),
        ..FaultPlan::default()
    });
    let degraded = rclient(&cluster, 2, WriteQuorum::All);
    let mut f = PvfsFile::open(&degraded, "/pvfs/coll").unwrap();
    let total = f.size().unwrap() as usize;
    let mut got = vec![0u8; total];
    f.read_at(0, &mut got).unwrap();
    for rank in 0..ranks {
        let pattern = strided((rank as u64) * 32, 16, 32, (ranks as u64) * 32);
        for r in pattern.iter() {
            assert!(
                got[r.offset as usize..r.end() as usize]
                    .iter()
                    .all(|b| *b == 0x40 + rank as u8),
                "rank {rank} bytes lost at {}",
                r.offset
            );
        }
    }
}

/// Turn proptest's raw (gap, len) pairs into sorted, disjoint regions.
fn disjoint(pairs: &[(u64, u64)]) -> Vec<Region> {
    let mut cursor = 0u64;
    let mut out = Vec::with_capacity(pairs.len());
    for &(gap, len) in pairs {
        let offset = cursor + gap;
        out.push(Region::new(offset, len));
        cursor = offset + len;
    }
    out
}

/// One backend's view of the scenario: write the ops at r=2 while
/// healthy, kill one daemon, read everything back through failover.
fn degraded_view(ops: &[(Vec<Region>, u8)], storage: StorageConfig, dead: u32) -> (u64, Vec<u8>) {
    let mut cluster =
        LiveCluster::spawn_storage(3, IodConfig::default(), TransportKind::Chan, storage);
    let layout = StripeLayout::new(0, 3, 128).unwrap();
    {
        let healthy = rclient(&cluster, 2, WriteQuorum::All);
        let mut f = PvfsFile::create(&healthy, "/pvfs/eq", layout).unwrap();
        for (regions, fill) in ops {
            let file = RegionList::from_regions(regions.clone()).unwrap();
            let mem = RegionList::contiguous(0, file.total_len());
            let buf = vec![*fill; file.total_len() as usize];
            f.write_list(&mem, &file, &buf, Method::List).unwrap();
        }
    }
    cluster.inject_faults(FaultPlan {
        drop: 1.0,
        target: Some(dead),
        ..FaultPlan::default()
    });
    let degraded = rclient(&cluster, 2, WriteQuorum::All);
    let mut f = PvfsFile::open(&degraded, "/pvfs/eq").unwrap();
    let size = f.size().unwrap();
    let mut got = vec![0u8; size as usize + 64];
    f.read_at(0, &mut got).unwrap();
    (size, got)
}

proptest! {
    /// Acceptance: the mem-vs-file backend equivalence holds with one
    /// daemon down at r=2 — same sizes, same bytes, same hole fills,
    /// whichever daemon died.
    #[test]
    fn backends_agree_with_one_daemon_down_at_r2(
        ops in proptest::collection::vec(
            (proptest::collection::vec((0u64..300, 1u64..200), 1..6), 1u8..255),
            1..3,
        ),
        dead in 0u32..3,
    ) {
        let ops: Vec<(Vec<Region>, u8)> = ops
            .iter()
            .map(|(pairs, fill)| (disjoint(pairs), *fill))
            .collect();
        let dir = ScratchDir::new("replica-equiv");
        let file_storage = StorageConfig::File {
            dir: dir.path().to_path_buf(),
            sync: SyncPolicy::Interval(Duration::ZERO),
        };
        let (size_m, got_m) = degraded_view(&ops, StorageConfig::Mem, dead);
        let (size_f, got_f) = degraded_view(&ops, file_storage, dead);
        prop_assert_eq!(size_m, size_f, "sizes diverge between backends");
        prop_assert_eq!(got_m, got_f, "degraded reads diverge between backends");
    }
}
