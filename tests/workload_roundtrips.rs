//! Multi-client workload round-trips on the live cluster: concurrent
//! writers/readers running the paper's patterns must produce exactly
//! the bytes the pattern geometry dictates.

use pvfs::client::PvfsFile;
use pvfs::core::Method;
use pvfs::net::LiveCluster;
use pvfs::types::StripeLayout;
use pvfs::workloads::{verify, BlockBlock, Cyclic};

/// Every client writes its pattern share concurrently; a reader then
/// checks each byte of the file against the owning client's content.
fn run_partitioned_write<P>(pattern_for: P, clients: u64, file_size: u64, method: Method)
where
    P: Fn(u64) -> pvfs::core::ListRequest + Send + Sync + Copy + 'static,
{
    let cluster = LiveCluster::spawn(8);
    let layout = StripeLayout::new(0, 8, 1024).unwrap();
    PvfsFile::create(&cluster.client(), "/pvfs/w", layout)
        .unwrap()
        .close()
        .unwrap();

    let mut handles = Vec::new();
    for rank in 0..clients {
        let client = cluster.client();
        handles.push(std::thread::spawn(move || {
            let req = pattern_for(rank);
            let mut f = PvfsFile::open(&client, "/pvfs/w").unwrap();
            // Each client's bytes: canonical content salted by rank via
            // the offset shift.
            let src = verify::content(rank * 1_000_003, req.total_len() as usize);
            f.write_list(&req.mem, &req.file, &src, method).unwrap();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Read the whole file and verify ownership byte by byte.
    let mut reader = PvfsFile::open(&cluster.client(), "/pvfs/w").unwrap();
    let mut file = vec![0u8; file_size as usize];
    reader.read_at(0, &mut file).unwrap();
    for rank in 0..clients {
        let req = pattern_for(rank);
        let mut stream_pos = 0u64;
        for region in req.file.iter() {
            for i in 0..region.len {
                let want = verify::byte_at(rank * 1_000_003 + stream_pos + i);
                assert_eq!(
                    file[(region.offset + i) as usize],
                    want,
                    "client {rank} byte at {} wrong under {method}",
                    region.offset + i
                );
            }
            stream_pos += region.len;
        }
    }
}

#[test]
fn cyclic_concurrent_writers_with_list_io() {
    let pattern = Cyclic {
        clients: 4,
        accesses_per_client: 128,
        aggregate_bytes: 1 << 19,
    };
    run_partitioned_write(
        move |rank| pattern.request_for(rank).unwrap(),
        4,
        pattern.file_size(),
        Method::List,
    );
}

#[test]
fn cyclic_concurrent_writers_with_multiple_io() {
    let pattern = Cyclic {
        clients: 4,
        accesses_per_client: 32,
        aggregate_bytes: 1 << 17,
    };
    run_partitioned_write(
        move |rank| pattern.request_for(rank).unwrap(),
        4,
        pattern.file_size(),
        Method::Multiple,
    );
}

#[test]
fn cyclic_concurrent_writers_with_data_sieving() {
    // RMW windows overlap across clients; the serial gate must make
    // this safe even though regions interleave at fine grain.
    let pattern = Cyclic {
        clients: 4,
        accesses_per_client: 64,
        aggregate_bytes: 1 << 18,
    };
    run_partitioned_write(
        move |rank| pattern.request_for(rank).unwrap(),
        4,
        pattern.file_size(),
        Method::DataSieving,
    );
}

#[test]
fn blockblock_concurrent_writers_with_datatype_io() {
    let pattern = BlockBlock {
        clients: 4,
        accesses_per_client: 64,
        aggregate_bytes: 1 << 18, // 512×512 array
    };
    run_partitioned_write(
        move |rank| pattern.request_for(rank).unwrap(),
        4,
        pattern.file_size(),
        Method::Datatype,
    );
}

#[test]
fn blockblock_readers_see_what_cyclic_writers_wrote() {
    // Cross-pattern consistency: fill the file contiguously, then each
    // block-block client reads its block with a different method and
    // checks against the oracle.
    let cluster = LiveCluster::spawn(8);
    let layout = StripeLayout::new(0, 8, 2048).unwrap();
    let size = 1u64 << 18;
    let mut f = PvfsFile::create(&cluster.client(), "/pvfs/bb", layout).unwrap();
    f.write_at(0, &verify::content(0, size as usize)).unwrap();
    f.close().unwrap();

    let pattern = BlockBlock {
        clients: 4,
        accesses_per_client: 128,
        aggregate_bytes: size,
    };
    let methods = [
        Method::Multiple,
        Method::DataSieving,
        Method::List,
        Method::Hybrid,
    ];
    let mut handles = Vec::new();
    for (rank, method) in methods.into_iter().enumerate() {
        let client = cluster.client();
        handles.push(std::thread::spawn(move || {
            let req = pattern.request_for(rank as u64).unwrap();
            let mut f = PvfsFile::open(&client, "/pvfs/bb").unwrap();
            let mut buf = vec![0u8; req.total_len() as usize];
            f.read_list(&req.mem, &req.file, &mut buf, method).unwrap();
            let mut pos = 0usize;
            for region in req.file.iter() {
                let want = verify::content(region.offset, region.len as usize);
                assert_eq!(
                    &buf[pos..pos + region.len as usize],
                    &want[..],
                    "rank {rank} region {region} wrong under {method}"
                );
                pos += region.len as usize;
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
