//! End-to-end durability: the file-backed storage engine must survive a
//! daemon crash mid-list-write with all-or-nothing semantics, and must
//! be byte-for-byte indistinguishable from the memory backend for every
//! read a client can issue.
//!
//! The crash tests use [`CrashPoint`] injection to freeze a daemon's
//! store exactly as SIGKILL would — either with a torn journal record
//! (batch never committed) or after the intent record committed but
//! before the data-file runs finished (batch must complete on replay) —
//! then respawn a cluster over the same data directory and check what a
//! client observes.

use proptest::prelude::*;
use pvfs::client::PvfsFile;
use pvfs::core::Method;
use pvfs::disk::{CrashPoint, ScratchDir, StorageConfig, SyncPolicy};
use pvfs::net::{LiveCluster, TransportKind};
use pvfs::server::IodConfig;
use pvfs::types::{Region, RegionList, ServerId, StripeLayout};
use pvfs::workloads::verify;

/// Spawn a file-backed cluster over `dir` that leaves its data behind
/// when dropped, so a second spawn can recover from it.
fn spawn_file(n: u32, dir: &std::path::Path, sync: SyncPolicy, kind: TransportKind) -> LiveCluster {
    LiveCluster::spawn_storage(
        n,
        IodConfig::default(),
        kind,
        StorageConfig::File {
            dir: dir.to_path_buf(),
            sync,
        },
    )
}

fn spawn_mem(n: u32, kind: TransportKind) -> LiveCluster {
    LiveCluster::spawn_storage(n, IodConfig::default(), kind, StorageConfig::Mem)
}

/// A noncontiguous write: `regions` filled from one contiguous user
/// buffer of matching total length.
fn list_write(f: &mut PvfsFile, regions: &[Region], fill: u8) -> pvfs::types::PvfsResult<()> {
    let total: u64 = regions.iter().map(|r| r.len).sum();
    let file = RegionList::from_regions(regions.to_vec()).unwrap();
    let mem = RegionList::contiguous(0, total);
    let buf = vec![fill; total as usize];
    f.write_list(&mem, &file, &buf, Method::List).map(|_| ())
}

/// What `baseline` should look like after `regions` are overwritten
/// with `fill`.
fn overlay(baseline: &[u8], regions: &[Region], fill: u8) -> Vec<u8> {
    let mut out = baseline.to_vec();
    for r in regions {
        let end = (r.offset + r.len) as usize;
        if end > out.len() {
            out.resize(end, 0);
        }
        out[r.offset as usize..end].fill(fill);
    }
    out
}

/// 33 regions, 32 bytes each, stride 64 — one wire request under the
/// list method (≤64 regions), so the daemon journals it as a single
/// intent record and the whole batch is all-or-nothing.
fn crash_batch() -> Vec<Region> {
    (0..33).map(|i| Region::new(i * 64, 32)).collect()
}

#[test]
fn torn_list_write_is_invisible_after_restart() {
    let dir = ScratchDir::new("dur-torn");
    let layout = StripeLayout::new(0, 1, 1 << 16).unwrap();
    let baseline = verify::content(0, 4096);
    {
        let cluster = spawn_file(1, dir.path(), SyncPolicy::Always, TransportKind::Chan);
        let client = cluster.client();
        let mut f = PvfsFile::create(&client, "/pvfs/crash", layout).unwrap();
        f.write_at(0, &baseline).unwrap();
        assert_eq!(f.sync().unwrap(), 4096);

        // Power fails mid-journal-append: the intent record tears and
        // the batch must never have happened.
        let daemon = cluster.daemon(ServerId(0)).unwrap();
        daemon.inject_storage_crash(f.handle(), CrashPoint::TornJournal);
        list_write(&mut f, &crash_batch(), 0xEE).unwrap_err();
    }

    // Recover from the data directory alone.
    let cluster = spawn_file(1, dir.path(), SyncPolicy::Always, TransportKind::Chan);
    let client = cluster.client();
    let mut f = PvfsFile::create(&client, "/pvfs/crash", layout).unwrap();
    assert_eq!(
        f.size().unwrap(),
        4096,
        "torn batch must not extend the file"
    );
    let mut got = vec![0u8; 4096];
    f.read_at(0, &mut got).unwrap();
    assert_eq!(got, baseline, "no region of the torn batch may be visible");
}

#[test]
fn committed_list_write_completes_after_restart() {
    let dir = ScratchDir::new("dur-commit");
    let layout = StripeLayout::new(0, 1, 1 << 16).unwrap();
    let baseline = verify::content(0, 4096);
    let batch = crash_batch();
    {
        let cluster = spawn_file(1, dir.path(), SyncPolicy::Always, TransportKind::Chan);
        let client = cluster.client();
        let mut f = PvfsFile::create(&client, "/pvfs/crash", layout).unwrap();
        f.write_at(0, &baseline).unwrap();

        // Power fails after the intent record committed but before any
        // data-file run landed: replay must complete the whole batch.
        let daemon = cluster.daemon(ServerId(0)).unwrap();
        daemon.inject_storage_crash(f.handle(), CrashPoint::AfterCommit { applied: 0 });
        list_write(&mut f, &batch, 0xEE).unwrap_err();
    }

    let cluster = spawn_file(1, dir.path(), SyncPolicy::Always, TransportKind::Chan);
    let client = cluster.client();
    let mut f = PvfsFile::create(&client, "/pvfs/crash", layout).unwrap();
    let expect = overlay(&baseline, &batch, 0xEE);
    let mut got = vec![0u8; expect.len()];
    f.read_at(0, &mut got).unwrap();
    assert_eq!(
        got, expect,
        "every region of the committed batch must be visible"
    );
    let snap = cluster.daemon(ServerId(0)).unwrap().stats_snapshot();
    assert!(
        snap.journal_replays > 0,
        "recovery must have replayed the journal"
    );
}

#[test]
fn partially_applied_batch_is_completed_not_double_applied() {
    let dir = ScratchDir::new("dur-partial");
    let layout = StripeLayout::new(0, 1, 1 << 16).unwrap();
    let batch = crash_batch();
    {
        let cluster = spawn_file(1, dir.path(), SyncPolicy::Always, TransportKind::Chan);
        let client = cluster.client();
        let mut f = PvfsFile::create(&client, "/pvfs/crash", layout).unwrap();
        // Touch the handle so the daemon has a store to wedge.
        f.write_at(0, &[0u8; 16]).unwrap();
        // Crash with some of the batch's runs already in the data file:
        // replay must be idempotent over the applied prefix.
        let daemon = cluster.daemon(ServerId(0)).unwrap();
        daemon.inject_storage_crash(f.handle(), CrashPoint::AfterCommit { applied: 5 });
        list_write(&mut f, &batch, 0xEE).unwrap_err();
    }

    let cluster = spawn_file(1, dir.path(), SyncPolicy::Always, TransportKind::Chan);
    let client = cluster.client();
    let mut f = PvfsFile::create(&client, "/pvfs/crash", layout).unwrap();
    let expect = overlay(&[], &batch, 0xEE);
    let mut got = vec![0u8; expect.len()];
    f.read_at(0, &mut got).unwrap();
    assert_eq!(got, expect);
}

#[test]
fn recovered_tail_reads_as_holes_not_journal_bytes() {
    let dir = ScratchDir::new("dur-holes");
    let layout = StripeLayout::new(0, 1, 1 << 16).unwrap();
    {
        let cluster = spawn_file(1, dir.path(), SyncPolicy::Always, TransportKind::Chan);
        let client = cluster.client();
        let mut f = PvfsFile::create(&client, "/pvfs/sparse", layout).unwrap();
        // One region floating in a sea of holes.
        list_write(&mut f, &[Region::new(100, 10)], 0x77).unwrap();
        assert!(f.sync().unwrap() >= 110);
    }

    let cluster = spawn_file(1, dir.path(), SyncPolicy::Always, TransportKind::Chan);
    let client = cluster.client();
    let mut f = PvfsFile::create(&client, "/pvfs/sparse", layout).unwrap();
    assert_eq!(f.size().unwrap(), 110);
    // The journal file still sits next to the data file, but nothing of
    // it may leak into reads: holes and the tail past the recovered
    // size are zeros.
    let mut got = vec![0xFFu8; 200];
    f.read_at(0, &mut got).unwrap();
    let mut expect = vec![0u8; 200];
    expect[100..110].fill(0x77);
    assert_eq!(got, expect);
}

#[test]
fn sync_sums_durable_bytes_across_servers() {
    let dir = ScratchDir::new("dur-sync");
    let layout = StripeLayout::new(0, 4, 256).unwrap();
    let cluster = spawn_file(4, dir.path(), SyncPolicy::Never, TransportKind::Chan);
    let client = cluster.client();
    let mut f = PvfsFile::create(&client, "/pvfs/fan", layout).unwrap();
    f.write_at(0, &verify::content(0, 4096)).unwrap();
    // Under `never` nothing is durable until the explicit barrier.
    assert_eq!(f.sync().unwrap(), 4096);
    // Idempotent: a second barrier still reports the durable total.
    assert_eq!(f.sync().unwrap(), 4096);
}

#[test]
fn memory_backend_reports_nothing_durable() {
    let cluster = spawn_mem(4, TransportKind::Chan);
    let client = cluster.client();
    let layout = StripeLayout::new(0, 4, 256).unwrap();
    let mut f = PvfsFile::create(&client, "/pvfs/mem", layout).unwrap();
    f.write_at(0, &verify::content(0, 4096)).unwrap();
    assert_eq!(f.sync().unwrap(), 0);
}

/// Run the same noncontiguous write program against a memory-backed and
/// a file-backed cluster and demand identical observable state.
fn assert_backends_agree(ops: &[(Vec<Region>, u8)], kind: TransportKind) {
    let dir = ScratchDir::new("dur-equiv");
    let layout = StripeLayout::new(0, 2, 512).unwrap();
    let mem = spawn_mem(2, kind);
    let file = spawn_file(
        2,
        dir.path(),
        SyncPolicy::Interval(std::time::Duration::ZERO),
        kind,
    );
    let mut fm = PvfsFile::create(&mem.client(), "/pvfs/e", layout).unwrap();
    let mut ff = PvfsFile::create(&file.client(), "/pvfs/e", layout).unwrap();
    for (regions, fill) in ops {
        list_write(&mut fm, regions, *fill).unwrap();
        list_write(&mut ff, regions, *fill).unwrap();
    }
    let size_m = fm.size().unwrap();
    let size_f = ff.size().unwrap();
    assert_eq!(size_m, size_f, "sizes diverge between backends");
    let mut got_m = vec![0u8; size_m as usize + 64];
    let mut got_f = vec![0u8; size_m as usize + 64];
    fm.read_at(0, &mut got_m).unwrap();
    ff.read_at(0, &mut got_f).unwrap();
    assert_eq!(got_m, got_f, "read-back diverges between backends");
    // A barrier on the file backend must not change what reads see.
    ff.sync().unwrap();
    let mut again = vec![0u8; size_m as usize + 64];
    ff.read_at(0, &mut again).unwrap();
    assert_eq!(again, got_m);
}

/// Turn proptest's raw (gap, len) pairs into a sorted, disjoint region
/// list — the shape `RegionList::from_regions` demands.
fn disjoint(pairs: &[(u64, u64)]) -> Vec<Region> {
    let mut cursor = 0u64;
    let mut out = Vec::with_capacity(pairs.len());
    for &(gap, len) in pairs {
        let offset = cursor + gap;
        out.push(Region::new(offset, len));
        cursor = offset + len;
    }
    out
}

proptest! {
    /// Satellite: random region-list programs observe identical bytes,
    /// sizes, and hole fills on both backends, over both transports.
    #[test]
    fn backends_are_equivalent_for_random_list_writes(
        ops in proptest::collection::vec(
            (proptest::collection::vec((0u64..300, 1u64..200), 1..8), 1u8..255),
            1..4,
        ),
    ) {
        let ops: Vec<(Vec<Region>, u8)> = ops
            .iter()
            .map(|(pairs, fill)| (disjoint(pairs), *fill))
            .collect();
        assert_backends_agree(&ops, TransportKind::Chan);
        assert_backends_agree(&ops, TransportKind::Tcp);
    }
}
