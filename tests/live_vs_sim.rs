//! Cross-crate contract: the live threaded cluster and the virtual-time
//! simulator must move byte-identical data for the same plans, because
//! the paper comparison is only meaningful if the timed code path *is*
//! the verified code path.

use pvfs::client::PvfsFile;
use pvfs::core::{plan, IoKind, Method, MethodConfig};
use pvfs::net::LiveCluster;
use pvfs::server::IodConfig;
use pvfs::sim::CostConfig;
use pvfs::simcluster::{ClientJob, SimCluster};
use pvfs::types::{FileHandle, StripeLayout};
use pvfs::workloads::{verify, BlockBlock, Cyclic, FlashIo, TiledViz};

const FH: FileHandle = FileHandle(11);

/// Read `request` through the simulator from a file seeded with the
/// canonical content.
fn sim_read(
    request: &pvfs::core::ListRequest,
    method: Method,
    layout: StripeLayout,
    file_size: u64,
) -> Vec<u8> {
    let mut sim = SimCluster::new(8, IodConfig::default(), CostConfig::paper_default());
    sim.seed_file(FH, &layout, &verify::content(0, file_size as usize));
    let cfg = MethodConfig::paper_default();
    let p = plan(method, IoKind::Read, request, FH, layout, &cfg).unwrap();
    let user = vec![0u8; request.mem.extent().map(|e| e.end()).unwrap_or(0) as usize];
    let (_, mut users) = sim.run(vec![ClientJob { plan: p, user }]).unwrap();
    users.pop().unwrap()
}

/// Read `request` through the live threaded cluster from a file seeded
/// with the canonical content.
fn live_read(
    request: &pvfs::core::ListRequest,
    method: Method,
    layout: StripeLayout,
    file_size: u64,
) -> Vec<u8> {
    let cluster = LiveCluster::spawn(8);
    let client = cluster.client();
    let mut f = PvfsFile::create(&client, "/pvfs/x", layout).unwrap();
    f.write_at(0, &verify::content(0, file_size as usize))
        .unwrap();
    let mut buf = vec![0u8; request.mem.extent().map(|e| e.end()).unwrap_or(0) as usize];
    f.read_list(&request.mem, &request.file, &mut buf, method)
        .unwrap();
    buf
}

#[test]
fn cyclic_reads_agree_between_live_and_sim() {
    let layout = StripeLayout::new(0, 8, 1024).unwrap();
    let pattern = Cyclic {
        clients: 4,
        accesses_per_client: 64,
        aggregate_bytes: 1 << 20,
    };
    let request = pattern.request_for(2).unwrap();
    for method in Method::ALL {
        let sim = sim_read(&request, method, layout, pattern.file_size());
        let live = live_read(&request, method, layout, pattern.file_size());
        assert_eq!(sim, live, "live/sim divergence for {method}");
        // And both match the oracle.
        let mut expected = Vec::new();
        for r in request.file.iter() {
            expected.extend_from_slice(&verify::content(r.offset, r.len as usize));
        }
        assert_eq!(sim, expected, "oracle mismatch for {method}");
    }
}

#[test]
fn blockblock_reads_agree_between_live_and_sim() {
    let layout = StripeLayout::new(0, 8, 512).unwrap();
    let pattern = BlockBlock {
        clients: 4,
        accesses_per_client: 32,
        aggregate_bytes: 1 << 18,
    };
    let request = pattern.request_for(3).unwrap();
    for method in [Method::Multiple, Method::DataSieving, Method::List] {
        let sim = sim_read(&request, method, layout, pattern.file_size());
        let live = live_read(&request, method, layout, pattern.file_size());
        assert_eq!(sim, live, "live/sim divergence for {method}");
    }
}

#[test]
fn tiled_reads_agree_between_live_and_sim() {
    // A shrunken wall (the paper geometry at 1/8 resolution) keeps the
    // live pass fast while preserving overlap structure.
    let wall = TiledViz {
        tiles_x: 3,
        tiles_y: 2,
        display_w: 128,
        display_h: 96,
        overlap_x: 33,
        overlap_y: 16,
        bytes_per_pixel: 3,
    };
    let layout = StripeLayout::new(0, 8, 2048).unwrap();
    let request = wall.request_for(4).unwrap();
    for method in [Method::List, Method::Hybrid] {
        let sim = sim_read(&request, method, layout, wall.file_size());
        let live = live_read(&request, method, layout, wall.file_size());
        assert_eq!(sim, live, "live/sim divergence for {method}");
    }
}

#[test]
fn flash_checkpoints_agree_between_live_and_sim() {
    // Write path: both executors must leave identical files.
    let flash = FlashIo::scaled(2, 3);
    let layout = StripeLayout::new(0, 8, 1024).unwrap();
    let file_size = flash.file_size() as usize;

    // Simulated: both procs write, then dump every daemon's bytes.
    let mut sim = SimCluster::new(8, IodConfig::default(), CostConfig::paper_default());
    let cfg = MethodConfig::paper_default();
    let jobs: Vec<ClientJob> = (0..2)
        .map(|p| {
            let req = flash.request_for(p).unwrap();
            ClientJob {
                plan: plan(Method::List, IoKind::Write, &req, FH, layout, &cfg).unwrap(),
                user: verify::content(p * 1_000_000, flash.mem_bytes() as usize),
            }
        })
        .collect();
    sim.run(jobs).unwrap();
    let mut sim_file = vec![0u8; file_size];
    for seg in layout.segments(pvfs::types::Region::new(0, file_size as u64)) {
        let daemon = sim.daemon(seg.server);
        if let Some(piece) = daemon.with_local_file(FH, |f| {
            f.peek_vec(seg.local_offset, seg.logical.len as usize)
        }) {
            sim_file[seg.logical.offset as usize..seg.logical.end() as usize]
                .copy_from_slice(&piece);
        }
    }

    // Live: same writes through threads, then a contiguous read-back.
    let cluster = LiveCluster::spawn(8);
    let setup = cluster.client();
    PvfsFile::create(&setup, "/pvfs/flash", layout)
        .unwrap()
        .close()
        .unwrap();
    let mut writers = Vec::new();
    for p in 0..2u64 {
        let client = cluster.client();
        writers.push(std::thread::spawn(move || {
            let flash = FlashIo::scaled(2, 3);
            let mut f = PvfsFile::open(&client, "/pvfs/flash").unwrap();
            let req = flash.request_for(p).unwrap();
            let mem = verify::content(p * 1_000_000, flash.mem_bytes() as usize);
            f.write_list(&req.mem, &req.file, &mem, Method::List)
                .unwrap();
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    let mut live_file = vec![0u8; file_size];
    let mut reader = PvfsFile::open(&cluster.client(), "/pvfs/flash").unwrap();
    reader.read_at(0, &mut live_file).unwrap();

    assert_eq!(sim_file, live_file, "sim and live checkpoint files differ");
}
