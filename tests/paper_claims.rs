//! The paper's quantitative claims, asserted end-to-end through the
//! public API: request-count formulas, frame limits, and the analytic
//! relationships §3.4 and §4 derive. These are the invariants that make
//! the reproduced figures comparable to the originals.

use pvfs::core::{plan, IoKind, Method, MethodConfig};
use pvfs::proto::{encode_message, Message, Request, ETHERNET_MTU, MAX_LIST_REGIONS};
use pvfs::types::{ClientId, FileHandle, RegionList, RequestId, StripeLayout};
use pvfs::workloads::{Cyclic, FlashIo, TiledViz};

fn paper_layout() -> StripeLayout {
    // §4.1: 8 I/O nodes, default 16 384-byte stripes.
    let l = StripeLayout::paper_default(8);
    assert_eq!(l.ssize, 16_384);
    l
}

#[test]
fn list_requests_fit_one_ethernet_packet() {
    // §3.3: 64 regions of trailing data chosen so request + trailing
    // data travel in a single 1500-byte Ethernet packet.
    let regions =
        RegionList::from_pairs((0..MAX_LIST_REGIONS as u64).map(|i| (i * 4096, 128))).unwrap();
    let frame = encode_message(&Message {
        client: ClientId(0),
        id: RequestId(0),
        request: Request::ReadList {
            handle: FileHandle(1),
            layout: paper_layout(),
            regions,
        },
    })
    .unwrap();
    assert!(frame.len() <= ETHERNET_MTU, "frame {} bytes", frame.len());
}

#[test]
fn flash_request_count_formulas() {
    // §4.3.1's arithmetic, through the real planners.
    let flash = FlashIo::new(4);
    let request = flash.request_for(1).unwrap();
    let cfg = MethodConfig::paper_default();
    let layout = paper_layout();

    // Multiple I/O: (80 blocks)(8x)(8y)(8z)(24 vars) = 983 040
    // requests/processor (every access is an 8-byte double).
    let multiple = plan(
        Method::Multiple,
        IoKind::Write,
        &request,
        FileHandle(1),
        layout,
        &cfg,
    )
    .unwrap();
    assert_eq!(multiple.stats.rounds, 983_040);

    // List I/O: (80 blocks)(24 vars)/64 = 30 requests/processor.
    let list = plan(
        Method::List,
        IoKind::Write,
        &request,
        FileHandle(1),
        layout,
        &cfg,
    )
    .unwrap();
    assert_eq!(list.stats.rounds, 30);

    // Data sieving: data size 7 864 320 bytes/processor < the 32 MB
    // buffer — but the *extent* spans the shared file, so windows scale
    // with the number of clients (the growth the paper measured).
    let sieve = plan(
        Method::DataSieving,
        IoKind::Write,
        &request,
        FileHandle(1),
        layout,
        &cfg,
    )
    .unwrap();
    assert_eq!(request.total_len(), 7_864_320);
    assert!(sieve.stats.serial_sections == 1);
}

#[test]
fn tiled_viz_request_count_formulas() {
    // §4.4.1: multiple I/O needs 768 requests, list I/O 768/64 = 12.
    let wall = TiledViz::paper();
    let request = wall.request_for(2).unwrap();
    let cfg = MethodConfig::paper_default();
    let layout = paper_layout();
    let multiple = plan(
        Method::Multiple,
        IoKind::Read,
        &request,
        FileHandle(1),
        layout,
        &cfg,
    )
    .unwrap();
    assert_eq!(multiple.stats.rounds, 768);
    let list = plan(
        Method::List,
        IoKind::Read,
        &request,
        FileHandle(1),
        layout,
        &cfg,
    )
    .unwrap();
    assert_eq!(list.stats.rounds, 12);
}

#[test]
fn cyclic_request_counts_scale_linearly_with_accesses() {
    // §4.2.2: "the number of contiguous I/O calls increases linearly
    // with the number of contiguous regions."
    let cfg = MethodConfig::paper_default();
    let layout = paper_layout();
    let count_for = |accesses: u64| {
        let pattern = Cyclic {
            clients: 8,
            accesses_per_client: accesses,
            aggregate_bytes: 1 << 26,
        };
        let request = pattern.request_for(0).unwrap();
        let p = plan(
            Method::Multiple,
            IoKind::Read,
            &request,
            FileHandle(1),
            layout,
            &cfg,
        )
        .unwrap();
        p.stats.requests
    };
    assert_eq!(count_for(4096) / count_for(1024), 4);
    assert_eq!(count_for(8192) / count_for(1024), 8);
}

#[test]
fn list_io_reduces_requests_by_the_trailing_factor() {
    // The 64× request reduction that produces the write figures' two
    // orders of magnitude.
    let cfg = MethodConfig::paper_default();
    let layout = paper_layout();
    let pattern = Cyclic {
        clients: 8,
        accesses_per_client: 65_536,
        aggregate_bytes: 1 << 29,
    };
    let request = pattern.request_for(0).unwrap();
    let multiple = plan(
        Method::Multiple,
        IoKind::Write,
        &request,
        FileHandle(1),
        layout,
        &cfg,
    )
    .unwrap();
    let list = plan(
        Method::List,
        IoKind::Write,
        &request,
        FileHandle(1),
        layout,
        &cfg,
    )
    .unwrap();
    assert_eq!(multiple.stats.rounds / list.stats.rounds, 64);
}

#[test]
fn sieving_wire_traffic_is_extent_not_useful_bytes() {
    // §3.2/§3.4: data sieving moves the access extent; the useless
    // share grows with the client count (each client's relevant share
    // of the same window halves when clients double).
    let cfg = MethodConfig::paper_default();
    let layout = paper_layout();
    let waste_for = |clients: u64| {
        let pattern = Cyclic {
            clients,
            accesses_per_client: 4096,
            aggregate_bytes: 1 << 26,
        };
        let request = pattern.request_for(0).unwrap();
        let p = plan(
            Method::DataSieving,
            IoKind::Read,
            &request,
            FileHandle(1),
            layout,
            &cfg,
        )
        .unwrap();
        (p.stats.waste_bytes, p.stats.useful_bytes)
    };
    let (waste8, useful8) = waste_for(8);
    let (waste16, useful16) = waste_for(16);
    assert_eq!(useful8, 2 * useful16); // same file split among more clients
                                       // Waste fraction roughly doubles: 7/8 -> 15/16 of the extent.
    let frac8 = waste8 as f64 / (waste8 + useful8) as f64;
    let frac16 = waste16 as f64 / (waste16 + useful16) as f64;
    assert!((frac8 - 0.875).abs() < 0.01, "frac8 {frac8}");
    assert!((frac16 - 0.9375).abs() < 0.01, "frac16 {frac16}");
}

#[test]
fn sieving_writes_double_the_traffic_via_rmw() {
    let cfg = MethodConfig::paper_default();
    let layout = paper_layout();
    let pattern = Cyclic {
        clients: 8,
        accesses_per_client: 1024,
        aggregate_bytes: 1 << 24,
    };
    let request = pattern.request_for(0).unwrap();
    let read = plan(
        Method::DataSieving,
        IoKind::Read,
        &request,
        FileHandle(1),
        layout,
        &cfg,
    )
    .unwrap();
    let write = plan(
        Method::DataSieving,
        IoKind::Write,
        &request,
        FileHandle(1),
        layout,
        &cfg,
    )
    .unwrap();
    assert_eq!(write.stats.wire_bytes(), 2 * read.stats.wire_bytes());
    assert_eq!(write.stats.serial_sections, 1);
    assert_eq!(read.stats.serial_sections, 0);
}

#[test]
fn datatype_io_removes_the_linear_relationship() {
    // §5: "This would eliminate the linear relationship between the
    // number of contiguous regions and the number of I/O requests."
    let cfg = MethodConfig::paper_default();
    let layout = paper_layout();
    let requests_for = |accesses: u64| {
        let pattern = Cyclic {
            clients: 8,
            accesses_per_client: accesses,
            aggregate_bytes: 1 << 26,
        };
        let request = pattern.request_for(0).unwrap();
        plan(
            Method::Datatype,
            IoKind::Read,
            &request,
            FileHandle(1),
            layout,
            &cfg,
        )
        .unwrap()
        .stats
        .requests
    };
    // The request count is bounded by the number of I/O servers (one
    // vector request per touched server), never by the region count —
    // compare with multiple I/O's 65 536.
    assert_eq!(requests_for(16_384), requests_for(65_536));
    assert!(requests_for(65_536) <= 8);
    assert!(requests_for(1024) <= 8);
}
