//! Minimal reimplementation of the parts of the `bytes` crate this
//! workspace uses, vendored so the build works without crates.io
//! access. [`Bytes`] is a cheaply cloneable, sliceable view into a
//! reference-counted buffer; [`BytesMut`] is a growable builder that
//! freezes into a [`Bytes`]. The [`Buf`]/[`BufMut`] traits carry the
//! little-endian cursor accessors the wire codec needs.
//!
//! Semantics match the real crate for every operation used here:
//! `slice`/`split_to` are O(1) views, `freeze` is move-only, and the
//! integer accessors advance the cursor.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True iff the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// An owned sub-view of `range` (indices relative to this view).
    /// O(1): shares the backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, leaving the remainder
    /// in `self`. O(1).
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(n),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

/// Read cursor over a byte source; integer accessors are little-endian
/// where suffixed `_le` and advance the cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Advance the cursor by `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// True iff any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte. Panics if empty (callers bounds-check first).
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write cursor appending to a byte sink; integer writers are
/// little-endian where suffixed `_le`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_put_get() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16_le(0x5056);
        b.put_u8(7);
        b.put_u32_le(0xdead_beef);
        b.put_u64_le(u64::MAX - 1);
        b.put_slice(b"xyz");
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 2 + 1 + 4 + 8 + 3);
        assert_eq!(frozen.get_u16_le(), 0x5056);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32_le(), 0xdead_beef);
        assert_eq!(frozen.get_u64_le(), u64::MAX - 1);
        assert_eq!(frozen.as_ref(), b"xyz");
    }

    #[test]
    fn slice_and_split_are_views() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(ss.as_ref(), &[3, 4]);
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(head.as_ref(), &[0, 1]);
        assert_eq!(rest.as_ref(), &[2, 3, 4, 5]);
    }

    #[test]
    fn equality_and_indexing() {
        let b = Bytes::from(vec![9u8; 4]);
        assert_eq!(b, Bytes::from(vec![9u8; 4]));
        assert_eq!(&b[1..3], &[9, 9]);
        assert!(Bytes::new().is_empty());
    }
}
