//! Minimal reimplementation of the parts of `criterion` this workspace
//! uses, vendored so benches build without crates.io access.
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` timed samples of the closure, and prints the median
//! time per iteration (plus derived throughput when configured) to
//! stdout. There are no HTML reports, no statistical regression
//! analysis, and no saved baselines — just honest wall-clock numbers,
//! which is what the comparison benches here need.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects settings and runs benchmark groups.
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
            default_warm_up: Duration::from_millis(200),
            default_measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, warm_up, measurement) = (
            self.default_sample_size,
            self.default_warm_up,
            self.default_measurement,
        );
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            warm_up,
            measurement,
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.default_sample_size;
        let warm_up = self.default_warm_up;
        let measurement = self.default_measurement;
        run_benchmark(
            &id.into().render(),
            sample_size,
            warm_up,
            measurement,
            None,
            f,
        );
    }
}

/// Volume processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: Some(name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by its parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.name, &self.parameter) {
            (Some(n), Some(p)) => format!("{n}/{p}"),
            (Some(n), None) => n.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId {
            name: Some(s),
            parameter: None,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target total time across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Configure throughput reporting for following benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().render());
        run_benchmark(
            &label,
            self.sample_size,
            self.warm_up,
            self.measurement,
            self.throughput,
            f,
        );
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (reporting already happened per-benchmark).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times back-to-back.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm up and estimate per-iteration cost.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut probes = 0u64;
    while warm_start.elapsed() < warm_up || probes == 0 {
        f(&mut probe);
        probes += 1;
        if probes >= 1000 {
            break;
        }
    }
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));

    // Pick an iteration count so sampling roughly fills `measurement`.
    let budget_per_sample = measurement.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget_per_sample / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];

    let mut line = format!("{label:<56} {:>14}/iter", fmt_ns(median));
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mb_s = n as f64 / (median / 1e9) / (1024.0 * 1024.0);
            line.push_str(&format!("  {mb_s:>10.1} MiB/s"));
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (median / 1e9);
            line.push_str(&format!("  {elem_s:>10.0} elem/s"));
        }
        None => {}
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Bytes(64));
        g.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
