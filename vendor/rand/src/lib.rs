//! Minimal reimplementation of the parts of the `rand` crate this
//! workspace uses, vendored so the build works without crates.io
//! access. The only generator is [`rngs::StdRng`], a splitmix64 /
//! xorshift-style PRNG — not cryptographically secure, but fast and
//! deterministic under [`SeedableRng::seed_from_u64`], which is all the
//! fuzz tests and benches here require.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a simple integer seed.
pub trait SeedableRng: Sized {
    /// Deterministically seed the generator from a `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`Range` or `RangeInclusive` over
    /// the common integer types).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(&mut |_| self.next_u64())
    }

    /// A uniformly random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types [`Rng::gen`] can produce.
pub trait Standard {
    /// Build a value from 64 random bits.
    fn from_u64(bits: u64) -> Self;
}

impl Standard for u8 {
    fn from_u64(bits: u64) -> u8 {
        bits as u8
    }
}

impl Standard for u64 {
    fn from_u64(bits: u64) -> u64 {
        bits
    }
}

impl Standard for bool {
    fn from_u64(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(bits: u64) -> f64 {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges [`Rng::gen_range`] accepts. The `gen` argument abstracts the
/// bit source so the trait stays object-safe-free and simple.
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample(self, gen: &mut dyn FnMut(()) -> u64) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, gen: &mut dyn FnMut(()) -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (gen(()) as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, gen: &mut dyn FnMut(()) -> u64) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (gen(()) as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, gen: &mut dyn FnMut(()) -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (gen(()) as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, gen: &mut dyn FnMut(()) -> u64) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (gen(()) as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i32: u32, i64: u64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, gen: &mut dyn FnMut(()) -> u64) -> f64 {
        let unit = (gen(()) >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: splitmix64-seeded xorshift64*.
    /// Deterministic for a given seed; NOT cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 scramble so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            StdRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u64..=8);
            assert!((1..=8).contains(&w));
            let u = rng.gen_range(3usize..700);
            assert!((3..700).contains(&u));
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
