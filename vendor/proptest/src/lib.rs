//! Minimal reimplementation of the parts of `proptest` this workspace
//! uses, vendored so the build works without crates.io access.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with its case index; the
//!   run is deterministic (seeds derive from the test name), so re-runs
//!   reproduce it exactly.
//! * **Fixed case count.** [`test_runner::CASES`] cases per property
//!   (overridable via the `PROPTEST_CASES` environment variable).
//! * **Tiny regex subset** for string strategies: `[class]{m,n}` with
//!   literal characters and `a-z` style ranges in the class — the only
//!   shape used in this workspace.
//!
//! The surface covered: `proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_oneof!`, `Just`, `any`, integer/float range strategies, tuple
//! strategies, `prop_map`, `prop_flat_map`, `collection::vec`, and
//! string-pattern strategies.

pub mod test_runner {
    //! Deterministic case generation.

    /// Number of cases each property runs (override with the
    /// `PROPTEST_CASES` environment variable).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// The random source strategies draw from. xorshift64*, seeded
    /// deterministically per test and per case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A root rng derived from a test name.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// An independent rng for one case of this test.
        pub fn fork(&self, case: u32) -> TestRng {
            let mut z = self
                .state
                .wrapping_add((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            TestRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform `u64` in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sample space");
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1]`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of value generated.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erase the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| inner.generate(rng)))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = ((rng.next_u64() as u128) % span) as $t;
                    self.start + draw
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128) - (lo as u128) + 1;
                    let draw = ((rng.next_u64() as u128) % span) as $t;
                    lo + draw
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    /// String strategies from a `[class]{m,n}` pattern (the regex
    /// subset this workspace uses).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, min, max) = crate::string::parse_simple_pattern(self);
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

pub mod string {
    //! The `[class]{m,n}` pattern parser behind `&str` strategies.

    /// Parse a pattern of the shape `[chars]{m,n}` into the candidate
    /// character set and the length bounds. Panics on anything outside
    /// that subset — extend this parser if a test needs more.
    pub fn parse_simple_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let inner = pattern
            .strip_prefix('[')
            .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?}"));
        let (class, rest) = inner
            .split_once(']')
            .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?}"));
        let mut chars = Vec::new();
        let raw: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < raw.len() {
            if i + 2 < raw.len() && raw[i + 1] == '-' {
                for c in raw[i]..=raw[i + 2] {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(raw[i]);
                i += 1;
            }
        }
        assert!(!chars.is_empty(), "empty character class in {pattern:?}");
        let bounds = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition in {pattern:?}"));
        let (min, max) = match bounds.split_once(',') {
            Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
            None => {
                let n = bounds.trim().parse().unwrap();
                (n, n)
            }
        };
        assert!(min <= max, "inverted repetition bounds in {pattern:?}");
        (chars, min, max)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any::<Self>()` returns.
        type Strategy: Strategy<Value = Self>;
        /// Build that strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = std::ops::RangeInclusive<$t>;
                fn arbitrary() -> Self::Strategy {
                    <$t>::MIN..=<$t>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    /// Whole-domain strategy for `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Smallest permitted length.
        pub min: usize,
        /// Largest permitted length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each function runs [`test_runner::cases`]
/// cases with values drawn from the `in` strategies; failures report
/// the case index (runs are deterministic, so re-runs reproduce).
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let root = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let cases = $crate::test_runner::cases();
                for case in 0..cases {
                    let mut rng = root.fork(case);
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                        $body
                    }));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest {}: failed at case {case}/{cases} (deterministic seed)",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Assert inside a property (panics; no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 10u64..20, b in 1usize..=4, f in 0.0f64..=1.0) {
            prop_assert!((10..20).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((0u32..4, any::<bool>()), 2..6),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (x, _) in v {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn map_flatmap_oneof(x in prop_oneof![
            (1u64..5).prop_map(|v| v * 100),
            (0u64..3).prop_flat_map(|lo| lo..lo + 10),
        ]) {
            prop_assert!(x < 500);
        }

        #[test]
        fn string_pattern(s in "[a-c/]{1,30}") {
            prop_assert!(!s.is_empty() && s.len() <= 30);
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '/')));
        }
    }

    #[test]
    fn just_clones() {
        use crate::test_runner::TestRng;
        let s = Just(vec![1, 2, 3]);
        let mut rng = TestRng::deterministic("just");
        assert_eq!(s.generate(&mut rng), vec![1, 2, 3]);
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::test_runner::TestRng;
        let root = TestRng::deterministic("x");
        let a = (0u64..1_000_000).generate(&mut root.fork(3));
        let b = (0u64..1_000_000).generate(&mut root.fork(3));
        assert_eq!(a, b);
    }
}
