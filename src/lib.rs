//! # pvfs — Noncontiguous I/O through PVFS, reproduced in Rust
//!
//! Facade crate for the reproduction of *"Noncontiguous I/O through
//! PVFS"* (Ching, Choudhary, Liao, Ross, Gropp — CLUSTER 2002). It
//! re-exports the workspace crates so applications can depend on a single
//! crate:
//!
//! * [`types`] — regions, region lists, striping, datatypes.
//! * [`proto`] — the wire protocol, including list-I/O trailing data.
//! * [`disk`] — the simulated local storage under each I/O daemon.
//! * [`server`] — the I/O daemon and manager daemon state machines.
//! * [`core`] — the noncontiguous access planners (multiple I/O, data
//!   sieving I/O, list I/O, hybrid, datatype I/O).
//! * [`net`] — the live in-process threaded cluster.
//! * [`replica`] — r-way stripe mirroring: rotated replica placement,
//!   write quorums, and the anti-entropy repair math behind `scrub`.
//! * [`client`] — the PVFS client library (`open`/`read_list`/...).
//! * [`collective`] — collective two-phase I/O: an in-process
//!   communicator, stripe-aligned file domains, and aggregator
//!   read/write engines (`CollectiveFile::{read_all, write_all}`).
//! * [`sim`] / [`simcluster`] — the discrete-event simulator used to
//!   regenerate the paper's figures at paper scale.
//! * [`workloads`] — the paper's access-pattern generators (1-D cyclic,
//!   block-block, FLASH I/O, tiled visualization).
//! * [`shell`] — an interactive shell over an in-process cluster
//!   (`cargo run --bin pvfs-shell`).
//!
//! ## Quickstart
//!
//! ```
//! use pvfs::client::PvfsFile;
//! use pvfs::core::Method;
//! use pvfs::net::LiveCluster;
//! use pvfs::types::{RegionList, StripeLayout};
//!
//! // An in-process PVFS cluster: 4 I/O daemons + 1 manager.
//! let cluster = LiveCluster::spawn(4);
//! let client = cluster.client();
//!
//! // Create a file striped over all 4 servers with 1 KiB stripes.
//! let layout = StripeLayout::new(0, 4, 1024).unwrap();
//! let mut file = PvfsFile::create(&client, "/pvfs/demo", layout).unwrap();
//!
//! // Contiguous write, then a noncontiguous (list I/O) read-back.
//! file.write_at(0, &vec![7u8; 8192]).unwrap();
//! let file_list = RegionList::from_pairs([(0, 16), (4096, 16)]).unwrap();
//! let mem_list = RegionList::contiguous(0, 32);
//! let mut buf = vec![0u8; 32];
//! file.read_list(&mem_list, &file_list, &mut buf, Method::List).unwrap();
//! assert_eq!(buf, vec![7u8; 32]);
//! ```

pub mod shell;

pub use pvfs_client as client;
pub use pvfs_collective as collective;
pub use pvfs_core as core;
pub use pvfs_disk as disk;
pub use pvfs_net as net;
pub use pvfs_proto as proto;
pub use pvfs_replica as replica;
pub use pvfs_server as server;
pub use pvfs_sim as sim;
pub use pvfs_simcluster as simcluster;
pub use pvfs_types as types;
pub use pvfs_workloads as workloads;
