//! An interactive shell over an in-process PVFS cluster.
//!
//! Drives the whole stack — manager, striped I/O daemons, the client
//! library and all five noncontiguous access methods — from one-line
//! commands. Used by the `pvfs-shell` binary and directly testable:
//! [`Shell::execute`] maps a command line to its printed output.
//!
//! ```text
//! pvfs> create /data 8 16384
//! pvfs> write /data 0 hello-parallel-world
//! pvfs> read /data 6 8
//! pvfs> method list
//! pvfs> writep /data 4096 16 64 256 0xab
//! pvfs> readp /data 4096 16 64 256
//! pvfs> ls
//! pvfs> stats
//! ```

use crate::client::PvfsFile;
use crate::core::Method;
use crate::net::{ClusterClient, LiveCluster, RpcTarget};
use crate::proto::{Request, Response};
use crate::types::{
    PvfsError, PvfsResult, RegionList, ServerId, StatsSnapshot, StripeLayout, TraceId,
};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Shell state: one live cluster, open files, the selected access
/// method.
pub struct Shell {
    cluster: LiveCluster,
    /// The shell's one client endpoint. Every open file clones it, so
    /// all commands share one tracer (`trace last` sees every op) and
    /// one set of resilience counters (the `stats` client section).
    client: ClusterClient,
    files: HashMap<String, PvfsFile>,
    method: Method,
}

impl Shell {
    /// Start a shell over a fresh cluster with `n_servers` I/O daemons.
    pub fn new(n_servers: u32) -> Shell {
        let cluster = LiveCluster::spawn(n_servers);
        let client = cluster.client();
        Shell {
            cluster,
            client,
            files: HashMap::new(),
            method: Method::List,
        }
    }

    /// Number of I/O servers behind this shell.
    pub fn n_servers(&self) -> u32 {
        self.cluster.n_servers()
    }

    /// Switch this shell's trace mode without touching the process
    /// environment (the binary reads `PVFS_TRACE` into the initial
    /// client; tests and embedders use this). Files already open keep
    /// tracing under the mode they were opened with.
    pub fn set_trace_mode(&mut self, mode: crate::types::TraceMode) {
        self.client = self.cluster.client().with_trace_mode(mode);
    }

    /// Execute one command line; returns the text to print.
    pub fn execute(&mut self, line: &str) -> PvfsResult<String> {
        let mut words = line.split_whitespace();
        let Some(cmd) = words.next() else {
            return Ok(String::new());
        };
        let args: Vec<&str> = words.collect();
        match cmd {
            "help" => Ok(HELP.to_string()),
            "create" => self.cmd_create(&args),
            "open" => self.cmd_open(&args),
            "close" => self.cmd_close(&args),
            "rm" => self.cmd_rm(&args),
            "ls" => self.cmd_ls(),
            "stat" => self.cmd_stat(&args),
            "write" => self.cmd_write(&args),
            "read" => self.cmd_read(&args),
            "writep" => self.cmd_writep(&args),
            "readp" => self.cmd_readp(&args),
            "method" => self.cmd_method(&args),
            "sync" => self.cmd_sync(&args),
            "scrub" => self.cmd_scrub(&args),
            "bench" => self.cmd_bench(&args),
            "stats" => self.cmd_stats(&args),
            "trace" => self.cmd_trace(&args),
            "health" => self.cmd_health(),
            other => Err(PvfsError::invalid(format!(
                "unknown command '{other}' (try 'help')"
            ))),
        }
    }

    fn file_mut(&mut self, path: &str) -> PvfsResult<&mut PvfsFile> {
        self.files
            .get_mut(path)
            .ok_or_else(|| PvfsError::invalid(format!("'{path}' is not open (use open/create)")))
    }

    fn cmd_create(&mut self, args: &[&str]) -> PvfsResult<String> {
        let path = *args
            .first()
            .ok_or_else(|| PvfsError::invalid("create PATH [pcount [ssize [base]]]"))?;
        let pcount: u32 = parse_or(args.get(1), self.cluster.n_servers())?;
        let ssize: u64 = parse_or(args.get(2), pvfs_types::striping::DEFAULT_STRIPE_SIZE)?;
        let base: u32 = parse_or(args.get(3), 0)?;
        let layout = StripeLayout::new(base, pcount, ssize)?;
        let file = PvfsFile::create(&self.client, path, layout)?;
        self.files.insert(path.to_string(), file);
        Ok(format!(
            "created {path}: {pcount}-way striped from node {base}, {ssize} B stripes"
        ))
    }

    fn cmd_open(&mut self, args: &[&str]) -> PvfsResult<String> {
        let path = *args
            .first()
            .ok_or_else(|| PvfsError::invalid("open PATH"))?;
        let file = PvfsFile::open(&self.client, path)?;
        let l = file.layout();
        self.files.insert(path.to_string(), file);
        Ok(format!(
            "opened {path} (handle {}, {}-way, {} B stripes)",
            self.files[path].handle(),
            l.pcount,
            l.ssize
        ))
    }

    fn cmd_close(&mut self, args: &[&str]) -> PvfsResult<String> {
        let path = *args
            .first()
            .ok_or_else(|| PvfsError::invalid("close PATH"))?;
        let file = self
            .files
            .remove(path)
            .ok_or_else(|| PvfsError::invalid(format!("'{path}' is not open")))?;
        file.close()?;
        Ok(format!("closed {path}"))
    }

    fn cmd_rm(&mut self, args: &[&str]) -> PvfsResult<String> {
        let path = *args.first().ok_or_else(|| PvfsError::invalid("rm PATH"))?;
        self.files.remove(path);
        PvfsFile::remove(&self.client, path)?;
        Ok(format!("removed {path}"))
    }

    fn cmd_ls(&mut self) -> PvfsResult<String> {
        let paths = PvfsFile::list(&self.client)?;
        if paths.is_empty() {
            return Ok("(empty namespace)".into());
        }
        Ok(paths.join("\n"))
    }

    fn cmd_stat(&mut self, args: &[&str]) -> PvfsResult<String> {
        let path = *args
            .first()
            .ok_or_else(|| PvfsError::invalid("stat PATH"))?;
        let file = self.file_mut(path)?;
        let l = file.layout();
        let size = file.size()?;
        Ok(format!(
            "{path}: {size} bytes, handle {}, striped {}-way from node {} at {} B",
            file.handle(),
            l.pcount,
            l.base,
            l.ssize
        ))
    }

    fn cmd_write(&mut self, args: &[&str]) -> PvfsResult<String> {
        let (path, offset) = path_offset(args, "write PATH OFFSET TEXT")?;
        let text = args
            .get(2)
            .ok_or_else(|| PvfsError::invalid("write PATH OFFSET TEXT"))?;
        let file = self.file_mut(path)?;
        let report = file.write_at(offset, text.as_bytes())?;
        Ok(format!(
            "wrote {} bytes at {offset} ({} requests)",
            text.len(),
            report.requests
        ))
    }

    fn cmd_read(&mut self, args: &[&str]) -> PvfsResult<String> {
        let (path, offset) = path_offset(args, "read PATH OFFSET LEN")?;
        let len: usize = parse(args.get(2), "LEN")?;
        if len > 1 << 20 {
            return Err(PvfsError::invalid("read at most 1 MiB at a time"));
        }
        let file = self.file_mut(path)?;
        let mut buf = vec![0u8; len];
        file.read_at(offset, &mut buf)?;
        Ok(render_bytes(&buf))
    }

    fn cmd_writep(&mut self, args: &[&str]) -> PvfsResult<String> {
        let (path, offset) = path_offset(args, "writep PATH OFFSET COUNT LEN STRIDE BYTE")?;
        let count: u64 = parse(args.get(2), "COUNT")?;
        let len: u64 = parse(args.get(3), "LEN")?;
        let stride: u64 = parse(args.get(4), "STRIDE")?;
        let byte = parse_byte(args.get(5))?;
        let regions = strided_regions(offset, count, len, stride)?;
        let mem = RegionList::contiguous(0, regions.total_len());
        let src = vec![byte; regions.total_len() as usize];
        let method = self.method;
        let file = self.file_mut(path)?;
        let report = file.write_list(&mem, &regions, &src, method)?;
        Ok(format!(
            "wrote {count}×{len} B every {stride} B at {offset} with {}: {} requests, {} rounds",
            method, report.requests, report.rounds
        ))
    }

    fn cmd_readp(&mut self, args: &[&str]) -> PvfsResult<String> {
        let (path, offset) = path_offset(args, "readp PATH OFFSET COUNT LEN STRIDE")?;
        let count: u64 = parse(args.get(2), "COUNT")?;
        let len: u64 = parse(args.get(3), "LEN")?;
        let stride: u64 = parse(args.get(4), "STRIDE")?;
        let regions = strided_regions(offset, count, len, stride)?;
        let mem = RegionList::contiguous(0, regions.total_len());
        let mut buf = vec![0u8; regions.total_len() as usize];
        let method = self.method;
        let file = self.file_mut(path)?;
        let report = file.read_list(&mem, &regions, &mut buf, method)?;
        let mut out = format!(
            "read {count}×{len} B every {stride} B at {offset} with {}: {} requests, {} rounds\n",
            method, report.requests, report.rounds
        );
        out.push_str(&render_bytes(&buf[..buf.len().min(64)]));
        Ok(out)
    }

    fn cmd_method(&mut self, args: &[&str]) -> PvfsResult<String> {
        match args.first() {
            None => Ok(format!("current method: {}", self.method)),
            Some(&name) => {
                self.method = match name {
                    "multiple" => Method::Multiple,
                    "sieve" | "sieving" | "datasieving" => Method::DataSieving,
                    "list" => Method::List,
                    "hybrid" => Method::Hybrid,
                    "datatype" | "vector" => Method::Datatype,
                    "twophase" | "two-phase" | "collective" => {
                        // Selectable so the error below explains itself
                        // the moment a read/write is attempted: the
                        // shell drives a single client, and two-phase
                        // needs a communicator full of ranks.
                        Method::TwoPhase
                    }
                    other => {
                        return Err(PvfsError::invalid(format!(
                        "unknown method '{other}' (multiple|sieve|list|hybrid|datatype|twophase)"
                    )))
                    }
                };
                Ok(format!("method set to {}", self.method))
            }
        }
    }

    /// Durability barrier. `sync PATH` fsyncs one open file on every
    /// daemon in its layout; bare `sync` flushes every open file on
    /// every daemon. On the memory backend both are cheap no-ops that
    /// report zero durable bytes — only `PVFS_STORAGE=file:<dir>`
    /// clusters have anything to persist.
    fn cmd_sync(&mut self, args: &[&str]) -> PvfsResult<String> {
        match args.first() {
            Some(&path) => {
                let durable = self.file_mut(path)?.sync()?;
                Ok(format!("synced {path}: {durable} bytes durable"))
            }
            None => {
                let client = &self.client;
                let mut files = 0u64;
                for i in 0..self.cluster.n_servers() {
                    match client.call(RpcTarget::Server(ServerId(i)), Request::Flush)? {
                        Response::Flushed { files: n } => files += n,
                        other => {
                            return Err(PvfsError::protocol(format!(
                                "unexpected response to Flush: {other:?}"
                            )))
                        }
                    }
                }
                Ok(format!(
                    "flushed {files} open files across {} daemons",
                    self.cluster.n_servers()
                ))
            }
        }
    }

    /// Anti-entropy repair. `scrub PATH` digests and heals one open
    /// file; bare `scrub` walks every open file. With `PVFS_REPLICAS`
    /// unset (r=1) there is nothing to compare and the pass reports
    /// clean without touching any daemon.
    fn cmd_scrub(&mut self, args: &[&str]) -> PvfsResult<String> {
        let paths: Vec<String> = match args.first() {
            Some(&path) => {
                self.file_mut(path)?;
                vec![path.to_string()]
            }
            None => {
                let mut open: Vec<String> = self.files.keys().cloned().collect();
                open.sort();
                open
            }
        };
        if paths.is_empty() {
            return Ok("nothing open to scrub".into());
        }
        let mut total = crate::types::ScrubReport::default();
        for path in &paths {
            let file = self.file_mut(path)?;
            total.absorb(&file.scrub()?);
        }
        Ok(format!(
            "scrubbed {} file(s): {} slots, {} digests compared, {} divergent copies, \
             {} bytes repaired, {} truncated, {} unreachable",
            paths.len(),
            total.slots_scanned,
            total.digests_compared,
            total.copies_divergent,
            total.repair_bytes,
            total.copies_truncated,
            total.copies_unreachable
        ))
    }

    /// Compare all five methods on a strided pattern against an open
    /// file, with wall-clock timing on the live cluster.
    fn cmd_bench(&mut self, args: &[&str]) -> PvfsResult<String> {
        let (path, offset) = path_offset(args, "bench PATH OFFSET COUNT LEN STRIDE")?;
        let count: u64 = parse(args.get(2), "COUNT")?;
        let len: u64 = parse(args.get(3), "LEN")?;
        let stride: u64 = parse(args.get(4), "STRIDE")?;
        let regions = strided_regions(offset, count, len, stride)?;
        let mem = RegionList::contiguous(0, regions.total_len());
        let file = self.file_mut(path)?;
        let mut out = format!(
            "{:<20} {:>10} {:>8} {:>12}\n",
            "method", "requests", "rounds", "wall µs"
        );
        for method in crate::core::Method::ALL {
            let mut buf = vec![0u8; regions.total_len() as usize];
            let started = std::time::Instant::now();
            let report = file.read_list(&mem, &regions, &mut buf, method)?;
            let us = started.elapsed().as_micros();
            let _ = writeln!(
                out,
                "{:<20} {:>10} {:>8} {:>12}",
                method.name(),
                report.requests,
                report.rounds,
                us
            );
        }
        out.pop();
        Ok(out)
    }

    /// Scrape every daemon (and the manager) over the `GetStats` RPC —
    /// the same path an external monitoring tool would use — and render
    /// counters plus queue-wait/service-time percentiles. `stats json`
    /// emits the machine-readable form instead.
    fn cmd_stats(&mut self, args: &[&str]) -> PvfsResult<String> {
        let client = &self.client;
        let scrape = |target: RpcTarget| -> PvfsResult<StatsSnapshot> {
            match client.call(target, Request::GetStats)? {
                Response::Stats(s) => Ok(*s),
                other => Err(PvfsError::protocol(format!(
                    "unexpected response to GetStats: {other:?}"
                ))),
            }
        };
        let snaps: Vec<StatsSnapshot> = (0..self.cluster.n_servers())
            .map(|i| scrape(RpcTarget::Server(ServerId(i))))
            .collect::<PvfsResult<_>>()?;
        let mgr = scrape(RpcTarget::Manager)?;

        if args.first() == Some(&"json") {
            let mut out = String::from("[");
            for (i, s) in snaps.iter().enumerate() {
                let _ = write!(out, "{{\"daemon\":\"iod{i}\",\"stats\":{}}},", s.to_json());
            }
            let _ = write!(out, "{{\"daemon\":\"mgr\",\"stats\":{}}},", mgr.to_json());
            let fields: Vec<String> = client
                .stats()
                .counters()
                .iter()
                .map(|(name, value)| format!("\"{name}\":{value}"))
                .collect();
            let _ = write!(
                out,
                "{{\"daemon\":\"client\",\"stats\":{{{}}}}}]",
                fields.join(",")
            );
            return Ok(out);
        }

        let mut out =
            String::from("server     requests  contig    list  regions   read B  written B\n");
        for (i, s) in snaps.iter().enumerate() {
            let name = format!("iod{i}");
            let _ = writeln!(
                out,
                "{name:<10} {:>8} {:>7} {:>7} {:>8} {:>8} {:>10}",
                s.requests,
                s.contiguous_requests,
                s.list_requests,
                s.regions,
                s.bytes_read,
                s.bytes_written
            );
        }
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>7} {:>7} {:>8} {:>8} {:>10}",
            "mgr", mgr.requests, 0, 0, 0, mgr.bytes_read, mgr.bytes_written
        );
        let _ = writeln!(
            out,
            "\nstorage    jrnl-app  jrnl-depth  replays  flushes  fsyncs    shed"
        );
        for (i, s) in snaps.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<10} {:>8} {:>11} {:>8} {:>8} {:>7} {:>7}",
                format!("iod{i}"),
                s.journal_appends,
                s.journal_depth,
                s.journal_replays,
                s.flushes,
                s.fsyncs,
                s.requests_shed
            );
        }
        let _ = writeln!(
            out,
            "\nlatency (µs)            p50      p95      p99  samples"
        );
        let us = |ns: u64| ns as f64 / 1000.0;
        for (i, s) in snaps.iter().enumerate() {
            for (what, h) in [
                ("queue-wait", &s.queue_wait),
                ("service", &s.service_time),
                ("fsync", &s.fsync_time),
            ] {
                let _ = writeln!(
                    out,
                    "{:<18} {:>8.1} {:>8.1} {:>8.1} {:>8}",
                    format!("iod{i} {what}"),
                    us(h.percentile_ns(0.50)),
                    us(h.percentile_ns(0.95)),
                    us(h.percentile_ns(0.99)),
                    h.count()
                );
            }
        }
        let _ = writeln!(
            out,
            "{:<18} {:>8.1} {:>8.1} {:>8.1} {:>8}",
            "mgr service",
            us(mgr.service_time.percentile_ns(0.50)),
            us(mgr.service_time.percentile_ns(0.95)),
            us(mgr.service_time.percentile_ns(0.99)),
            mgr.service_time.count()
        );
        // Client-side resilience counters — rendered from the same
        // exhaustive `ClientStats::counters()` listing the completeness
        // test checks, so a counter added to `ClientStats` shows up
        // here without a second edit (and can never silently vanish).
        let _ = writeln!(out, "\nclient counters");
        for (name, value) in client.stats().counters() {
            let _ = writeln!(out, "  {name:<20} {value:>10}");
        }
        out.pop();
        Ok(out)
    }

    /// Render the waterfall of one retained distributed trace. Bare
    /// `trace` (or `trace last`) shows the most recently retained
    /// trace; `trace ID` looks one up by the hex id a waterfall header
    /// prints. Requires `PVFS_TRACE` (off by default: zero overhead,
    /// nothing retained).
    fn cmd_trace(&mut self, args: &[&str]) -> PvfsResult<String> {
        if !self.client.tracer().enabled() {
            return Ok(
                "tracing is off — restart with PVFS_TRACE=all|slow:<ms>|sample:<1/n>".into(),
            );
        }
        let trace = match args.first() {
            None | Some(&"last") => self.client.tracer().last().ok_or_else(|| {
                PvfsError::invalid("no trace retained yet (run an I/O command first)")
            })?,
            Some(&id) => TraceId::parse(id)?,
        };
        let tree = self.client.fetch_trace(trace);
        if tree.spans().is_empty() {
            return Err(PvfsError::invalid(format!(
                "no spans retained for trace {trace} (evicted from a ring, or never sampled?)"
            )));
        }
        Ok(tree.render())
    }

    /// Ping every daemon over the wire — the same cheap probe a
    /// background failure detector would run — and report round-trip
    /// time and live queue depth. A daemon that cannot answer within
    /// the RPC deadline shows as `down` with the error it produced.
    fn cmd_health(&mut self) -> PvfsResult<String> {
        let client = &self.client;
        let mut out = String::from("server     status    rtt µs  queue\n");
        for i in 0..self.cluster.n_servers() {
            let started = std::time::Instant::now();
            match client.ping(ServerId(i)) {
                Ok(depth) => {
                    let _ = writeln!(
                        out,
                        "{:<10} {:<8} {:>8.1} {:>6}",
                        format!("iod{i}"),
                        "up",
                        started.elapsed().as_secs_f64() * 1e6,
                        depth
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "{:<10} {:<8} {e}", format!("iod{i}"), "down");
                }
            }
        }
        out.pop();
        Ok(out)
    }
}

const HELP: &str = "commands:
  create PATH [pcount [ssize [base]]]   create a striped file
  open PATH | close PATH | rm PATH      namespace operations
  ls                                    list the namespace
  stat PATH                             size + striping of an open file
  write PATH OFFSET TEXT                contiguous write
  read PATH OFFSET LEN                  contiguous read (hex+ascii)
  writep PATH OFFSET COUNT LEN STRIDE BYTE   strided noncontiguous write
  readp PATH OFFSET COUNT LEN STRIDE    strided noncontiguous read
  method [multiple|sieve|list|hybrid|datatype]   select the access method
  sync [PATH]                           durability barrier: one open file, or every daemon
  scrub [PATH]                          anti-entropy repair across replicas (PVFS_REPLICAS)
  bench PATH OFFSET COUNT LEN STRIDE    compare all methods on a pattern
  stats [json]                          per-server statistics scraped over the GetStats RPC
  trace [last|ID]                       waterfall of a retained trace (needs PVFS_TRACE)
  health                                ping every daemon: liveness, RTT, queue depth
  help                                  this text";

fn parse<T: std::str::FromStr>(arg: Option<&&str>, name: &str) -> PvfsResult<T> {
    arg.ok_or_else(|| PvfsError::invalid(format!("missing {name}")))?
        .parse()
        .map_err(|_| PvfsError::invalid(format!("bad {name}")))
}

fn parse_or<T: std::str::FromStr>(arg: Option<&&str>, default: T) -> PvfsResult<T> {
    match arg {
        None => Ok(default),
        Some(s) => s
            .parse()
            .map_err(|_| PvfsError::invalid(format!("bad number '{s}'"))),
    }
}

fn parse_byte(arg: Option<&&str>) -> PvfsResult<u8> {
    let s = arg.ok_or_else(|| PvfsError::invalid("missing BYTE"))?;
    let v = if let Some(hex) = s.strip_prefix("0x") {
        u8::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    v.map_err(|_| PvfsError::invalid(format!("bad byte '{s}'")))
}

fn path_offset<'a>(args: &[&'a str], usage: &str) -> PvfsResult<(&'a str, u64)> {
    let path = *args.first().ok_or_else(|| PvfsError::invalid(usage))?;
    let offset: u64 = parse(args.get(1), "OFFSET")?;
    Ok((path, offset))
}

fn strided_regions(offset: u64, count: u64, len: u64, stride: u64) -> PvfsResult<RegionList> {
    if count == 0 || len == 0 {
        return Err(PvfsError::invalid("COUNT and LEN must be nonzero"));
    }
    if stride < len {
        return Err(PvfsError::invalid("STRIDE must be at least LEN"));
    }
    if count * len > 1 << 24 {
        return Err(PvfsError::invalid("pattern too large (max 16 MiB)"));
    }
    RegionList::from_pairs((0..count).map(|i| (offset + i * stride, len)))
}

/// Hex + ASCII dump, 16 bytes per line.
fn render_bytes(buf: &[u8]) -> String {
    let mut out = String::new();
    for (i, chunk) in buf.chunks(16).enumerate() {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        let ascii: String = chunk
            .iter()
            .map(|&b| {
                if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                }
            })
            .collect();
        let _ = writeln!(out, "{:08x}  {:<47}  |{}|", i * 16, hex.join(" "), ascii);
    }
    if out.ends_with('\n') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shell() -> Shell {
        Shell::new(4)
    }

    #[test]
    fn create_write_read_cycle() {
        let mut sh = shell();
        sh.execute("create /f 4 64").unwrap();
        sh.execute("write /f 0 hello").unwrap();
        let out = sh.execute("read /f 0 5").unwrap();
        assert!(out.contains("68 65 6c 6c 6f"), "{out}");
        assert!(out.contains("|hello|"), "{out}");
    }

    #[test]
    fn ls_and_rm() {
        let mut sh = shell();
        assert_eq!(sh.execute("ls").unwrap(), "(empty namespace)");
        sh.execute("create /a").unwrap();
        sh.execute("create /b").unwrap();
        assert_eq!(sh.execute("ls").unwrap(), "/a\n/b");
        sh.execute("rm /a").unwrap();
        assert_eq!(sh.execute("ls").unwrap(), "/b");
    }

    #[test]
    fn stat_reports_size_and_layout() {
        let mut sh = shell();
        sh.execute("create /f 2 128").unwrap();
        sh.execute("write /f 100 xyz").unwrap();
        let out = sh.execute("stat /f").unwrap();
        assert!(out.contains("103 bytes"), "{out}");
        assert!(out.contains("striped 2-way"), "{out}");
    }

    #[test]
    fn strided_pattern_roundtrip_under_each_method() {
        let mut sh = shell();
        sh.execute("create /p 4 64").unwrap();
        for m in ["multiple", "sieve", "list", "hybrid", "datatype"] {
            sh.execute(&format!("method {m}")).unwrap();
            sh.execute("writep /p 0 8 4 32 0xab").unwrap();
            let out = sh.execute("readp /p 0 8 4 32").unwrap();
            assert!(out.contains("ab ab ab ab"), "method {m}: {out}");
        }
        // Gaps were never written.
        let gap = sh.execute("read /p 4 4").unwrap();
        assert!(gap.contains("00 00 00 00"), "{gap}");
    }

    #[test]
    fn method_switching_and_errors() {
        let mut sh = shell();
        assert!(sh.execute("method").unwrap().contains("List I/O"));
        sh.execute("method sieve").unwrap();
        assert!(sh.execute("method").unwrap().contains("Data Sieving"));
        assert!(sh.execute("method bogus").is_err());
    }

    #[test]
    fn helpful_errors() {
        let mut sh = shell();
        assert!(sh.execute("frobnicate").is_err());
        assert!(sh.execute("read /missing 0 4").is_err());
        assert!(sh.execute("open /missing").is_err());
        assert!(sh.execute("writep /x 0 0 4 8 1").is_err());
        assert!(sh.execute("create").is_err());
        assert!(sh.execute("").unwrap().is_empty());
        assert!(sh.execute("help").unwrap().contains("commands:"));
    }

    #[test]
    fn bench_compares_all_methods() {
        let mut sh = shell();
        sh.execute("create /b 4 64").unwrap();
        sh.execute("write /b 0 seed-data-so-reads-return-something")
            .unwrap();
        let out = sh.execute("bench /b 0 16 4 16").unwrap();
        for name in [
            "Multiple I/O",
            "Data Sieving I/O",
            "List I/O",
            "Hybrid I/O",
            "Datatype I/O",
        ] {
            assert!(out.contains(name), "missing {name}: {out}");
        }
    }

    #[test]
    fn stats_show_traffic() {
        let mut sh = shell();
        sh.execute("create /s 4 64").unwrap();
        sh.execute("write /s 0 0123456789abcdef").unwrap();
        let out = sh.execute("stats").unwrap();
        assert!(out.contains("iod0"), "{out}");
        assert!(out.lines().count() >= 5, "{out}");
        // The scrape includes the manager and the latency percentiles.
        assert!(out.contains("mgr"), "{out}");
        assert!(out.contains("latency (µs)"), "{out}");
        assert!(out.contains("iod0 queue-wait"), "{out}");
        assert!(out.contains("iod0 service"), "{out}");
    }

    #[test]
    fn stats_json_is_machine_readable() {
        let mut sh = shell();
        sh.execute("create /j 2 64").unwrap();
        sh.execute("write /j 0 payload").unwrap();
        let out = sh.execute("stats json").unwrap();
        assert!(out.starts_with('[') && out.ends_with(']'), "{out}");
        assert!(out.contains("\"daemon\":\"iod0\""), "{out}");
        assert!(out.contains("\"daemon\":\"mgr\""), "{out}");
        assert!(out.contains("\"requests\":"), "{out}");
        assert!(out.contains("\"p99_ns\":"), "{out}");
        // Scraping must not perturb the counters it reports.
        let again = sh.execute("stats json").unwrap();
        assert_eq!(again, out, "a scrape perturbed the stats");
    }

    #[test]
    fn sync_command_barriers_one_file_or_the_cluster() {
        let mut sh = shell();
        sh.execute("create /d 4 64").unwrap();
        sh.execute("write /d 0 make-it-durable").unwrap();
        // The default shell cluster is memory-backed: the barrier runs
        // the full RPC fan-out but has nothing to persist.
        let out = sh.execute("sync /d").unwrap();
        assert_eq!(out, "synced /d: 0 bytes durable");
        let out = sh.execute("sync").unwrap();
        assert!(out.contains("flushed"), "{out}");
        assert!(sh.execute("sync /missing").is_err());
    }

    #[test]
    fn stats_show_storage_counters() {
        let mut sh = shell();
        sh.execute("create /s 2 64").unwrap();
        sh.execute("write /s 0 bytes").unwrap();
        let out = sh.execute("stats").unwrap();
        assert!(out.contains("jrnl-app"), "{out}");
        assert!(out.contains("shed"), "{out}");
        assert!(out.contains("iod0 fsync"), "{out}");
    }

    #[test]
    fn health_pings_every_daemon() {
        let mut sh = shell();
        let out = sh.execute("health").unwrap();
        for i in 0..sh.n_servers() {
            assert!(out.contains(&format!("iod{i}")), "{out}");
        }
        assert!(out.contains("up"), "{out}");
        assert!(!out.contains("down"), "{out}");
        // The probes are accounted requests on the daemons they hit.
        let stats = sh.execute("stats json").unwrap();
        assert!(stats.contains("\"requests\":1"), "{stats}");
    }

    #[test]
    fn scrub_command_reports_clean_without_replication() {
        let mut sh = shell();
        assert_eq!(sh.execute("scrub").unwrap(), "nothing open to scrub");
        sh.execute("create /r 4 64").unwrap();
        sh.execute("write /r 0 replicated-bytes").unwrap();
        // The default shell cluster runs r=1: a scrub has nothing to
        // compare and reports clean without touching any daemon.
        let out = sh.execute("scrub /r").unwrap();
        assert!(out.contains("scrubbed 1 file(s)"), "{out}");
        assert!(out.contains("0 divergent copies"), "{out}");
        assert!(out.contains("0 bytes repaired"), "{out}");
        let all = sh.execute("scrub").unwrap();
        assert!(all.contains("scrubbed 1 file(s)"), "{all}");
        assert!(sh.execute("scrub /missing").is_err());
    }

    #[test]
    fn stats_render_every_client_counter() {
        let mut sh = shell();
        sh.execute("create /c 2 64").unwrap();
        sh.execute("write /c 0 counters").unwrap();
        let text = sh.execute("stats").unwrap();
        let json = sh.execute("stats json").unwrap();
        assert!(text.contains("client counters"), "{text}");
        assert!(json.contains("\"daemon\":\"client\""), "{json}");
        // Every ClientStats counter must surface in both renderings —
        // `counters()` destructures the struct exhaustively, so a field
        // added to ClientStats reaches this loop automatically and
        // cannot be silently dropped from the shell's reports.
        for (name, _) in sh.client.stats().counters() {
            assert!(text.contains(name), "stats text is missing {name}: {text}");
            assert!(
                json.contains(&format!("\"{name}\":")),
                "stats json is missing {name}: {json}"
            );
        }
    }

    #[test]
    fn trace_command_renders_a_waterfall() {
        let mut sh = shell();
        // Off by default: the command explains how to turn tracing on.
        assert!(sh.execute("trace").unwrap().contains("tracing is off"));
        sh.set_trace_mode(crate::types::TraceMode::All);
        sh.execute("create /t 4 64").unwrap();
        sh.execute("writep /t 0 8 4 32 0xab").unwrap();
        let out = sh.execute("trace last").unwrap();
        // The waterfall stitches client spans to the server-side spans
        // fetched over GetTrace: plan execution, per-attempt RPCs, and
        // the daemons' queue/service/storage segments.
        assert!(out.starts_with("trace "), "{out}");
        assert!(out.contains("execute"), "{out}");
        assert!(out.contains("rpc:"), "{out}");
        assert!(out.contains("service"), "{out}");
        assert!(out.contains("queue"), "{out}");
        // The header's hex id looks the same trace up again.
        let id = out.split_whitespace().nth(1).unwrap();
        let by_id = sh.execute(&format!("trace {id}")).unwrap();
        assert_eq!(by_id, out, "fetching a waterfall changed the waterfall");
        assert!(sh.execute("trace not-hex").is_err());
    }

    #[test]
    fn close_then_reopen() {
        let mut sh = shell();
        sh.execute("create /c 2 32").unwrap();
        sh.execute("write /c 0 data").unwrap();
        sh.execute("close /c").unwrap();
        assert!(sh.execute("read /c 0 4").is_err()); // not open locally
        sh.execute("open /c").unwrap();
        let out = sh.execute("read /c 0 4").unwrap();
        assert!(out.contains("|data|"), "{out}");
    }

    #[test]
    fn render_bytes_format() {
        let out = render_bytes(&[0x41, 0x00, 0x7f]);
        assert!(out.contains("41 00 7f"));
        assert!(out.contains("|A..|"));
    }
}
