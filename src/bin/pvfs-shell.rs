//! Interactive shell over an in-process PVFS cluster.
//!
//! ```text
//! cargo run --bin pvfs-shell [n_servers]
//! ```
//!
//! Reads commands from stdin (`help` lists them); also works piped:
//! `echo -e "create /f\nwrite /f 0 hi\nread /f 0 2" | pvfs-shell`.

use pvfs::shell::Shell;
use std::io::{BufRead, Write};

fn main() {
    let n_servers: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    // Surface a bad replica configuration as a clean startup error
    // instead of a panic at the first command that builds a client.
    if let Err(e) = pvfs::replica::ReplicaPolicy::from_env(n_servers) {
        eprintln!("pvfs-shell: {e}");
        std::process::exit(2);
    }
    let mut shell = Shell::new(n_servers);
    let interactive = std::io::IsTerminal::is_terminal(&std::io::stdin());
    if interactive {
        println!(
            "pvfs-shell: {} I/O servers + 1 manager. Type 'help'.",
            shell.n_servers()
        );
    }
    let stdin = std::io::stdin();
    loop {
        if interactive {
            print!("pvfs> ");
            let _ = std::io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => match shell.execute(line.trim()) {
                Ok(out) if out.is_empty() => {}
                Ok(out) => println!("{out}"),
                Err(e) => eprintln!("error: {e}"),
            },
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        }
    }
}
