//! Plan inspector: compile every paper workload under every access
//! method and print what would go over the wire — request counts, wire
//! traffic, waste, copies — without running anything. This is §3.4's
//! "analysis of different approaches" as an executable table.
//!
//! ```text
//! cargo run --release --example access_patterns
//! ```

use pvfs::core::{plan, IoKind, ListRequest, Method, MethodConfig};
use pvfs::types::{FileHandle, StripeLayout};
use pvfs::workloads::{BlockBlock, Cyclic, FlashIo, NestedStrided, StrideLevel, TiledViz};

fn inspect(name: &str, request: &ListRequest, kind: IoKind) {
    let layout = StripeLayout::paper_default(8);
    let cfg = MethodConfig::paper_default();
    println!(
        "\n== {name} ({:?}): {} file regions, {} memory fragments, {} KiB useful ==",
        kind,
        request.file.count(),
        request.mem.count(),
        request.total_len() >> 10
    );
    println!(
        "{:<20} {:>10} {:>8} {:>14} {:>14} {:>12}",
        "method", "requests", "rounds", "wire KiB", "waste KiB", "copies KiB"
    );
    for method in Method::ALL {
        if kind == IoKind::Write && method == Method::DataSieving {
            // RMW + serialization: shown too, the paper avoided it for
            // the artificial benchmark but used it for FLASH.
        }
        match plan(method, kind, request, FileHandle(1), layout, &cfg) {
            Ok(p) => println!(
                "{:<20} {:>10} {:>8} {:>14} {:>14} {:>12}",
                method.name(),
                p.stats.requests,
                p.stats.rounds,
                p.stats.wire_bytes() >> 10,
                p.stats.waste_bytes >> 10,
                p.stats.copy_bytes >> 10
            ),
            Err(e) => println!("{:<20} failed: {e}", method.name()),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1-D cyclic: 8 clients, 64 Ki accesses over 256 MiB => 512 B/access.
    let cyclic = Cyclic {
        clients: 8,
        accesses_per_client: 65_536,
        aggregate_bytes: 256 << 20,
    };
    inspect(
        "1-D cyclic, client 0",
        &cyclic.request_for(0)?,
        IoKind::Read,
    );
    inspect(
        "1-D cyclic, client 0",
        &cyclic.request_for(0)?,
        IoKind::Write,
    );

    // Block-block: 16 clients.
    let bb = BlockBlock {
        clients: 16,
        accesses_per_client: 65_536,
        aggregate_bytes: 256 << 20,
    };
    inspect("block-block, client 5", &bb.request_for(5)?, IoKind::Read);

    // FLASH I/O (scaled to 8 blocks to keep the table instant).
    let flash = FlashIo::scaled(4, 8);
    inspect(
        "FLASH checkpoint, proc 0",
        &flash.request_for(0)?,
        IoKind::Write,
    );

    // Tiled visualization.
    let wall = TiledViz::paper();
    inspect("tiled viz, tile 0", &wall.request_for(0)?, IoKind::Read);

    // CHARISMA-style nested-strided sweep (the paper's ref [7] shapes):
    // 64 planes of 32 rows, 128 bytes per row position.
    let nested = NestedStrided {
        base: 0,
        levels: vec![
            StrideLevel {
                count: 64,
                stride: 1 << 20,
            },
            StrideLevel {
                count: 32,
                stride: 8192,
            },
        ],
        block: 128,
    };
    inspect("nested-strided sweep", &nested.request()?, IoKind::Read);

    println!(
        "\nKey quantities the paper quotes: tiled viz multiple={} list={} requests;",
        wall.regions_per_client(),
        wall.regions_per_client().div_ceil(64)
    );
    println!(
        "FLASH (full 80 blocks) multiple={} list={} requests/proc.",
        FlashIo::new(4).mem_region_count(),
        FlashIo::new(4).file_region_count().div_ceil(64)
    );
    Ok(())
}
