//! Tiled visualization read (§4.4 of the paper): six display clients
//! each read their overlapping tile of a 10.2 MiB frame — live for
//! correctness, simulated for the Fig. 17 open/read/close breakdown.
//!
//! ```text
//! cargo run --release --example tiled_viz
//! ```

use pvfs::client::PvfsFile;
use pvfs::core::{IoKind, Method, MethodConfig};
use pvfs::net::LiveCluster;
use pvfs::server::IodConfig;
use pvfs::sim::CostConfig;
use pvfs::simcluster::{metadata_rtt_ns, ClientJob, SimCluster};
use pvfs::types::{FileHandle, StripeLayout};
use pvfs::workloads::{verify, TiledViz};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wall = TiledViz::paper();
    println!(
        "tiled wall: {}x{} displays of {}x{} @ {}bpp, frame {}x{} = {:.1} MiB, {} rows/tile",
        wall.tiles_x,
        wall.tiles_y,
        wall.display_w,
        wall.display_h,
        wall.bytes_per_pixel * 8,
        wall.frame_w(),
        wall.frame_h(),
        wall.file_size() as f64 / (1 << 20) as f64,
        wall.regions_per_client()
    );

    // ---- live pass: seed the frame, read every tile with list I/O,
    // verify pixels against the oracle.
    let cluster = LiveCluster::spawn(8);
    let layout = StripeLayout::paper_default(8);
    let client = cluster.client();
    let mut frame = PvfsFile::create(&client, "/pvfs/frame.rgb", layout)?;
    let content = verify::content(0, wall.file_size() as usize);
    frame.write_at(0, &content)?;
    println!("seeded the frame file ({} bytes)", content.len());

    let mut tiles = Vec::new();
    for rank in 0..wall.clients() {
        let c = cluster.client();
        tiles.push(std::thread::spawn(move || {
            let wall = TiledViz::paper();
            let mut f = PvfsFile::open(&c, "/pvfs/frame.rgb").expect("open");
            let req = wall.request_for(rank).expect("tile request");
            let mut tile = vec![0u8; req.total_len() as usize];
            let report = f
                .read_list(&req.mem, &req.file, &mut tile, Method::List)
                .expect("tile read");
            // Verify each row against the oracle.
            let row_bytes = (wall.display_w * wall.bytes_per_pixel) as usize;
            for (i, region) in req.file.iter().enumerate() {
                let got = &tile[i * row_bytes..(i + 1) * row_bytes];
                let want = verify::content(region.offset, row_bytes);
                assert_eq!(got, want, "tile {rank} row {i} corrupt");
            }
            report.requests
        }));
    }
    for (rank, t) in tiles.into_iter().enumerate() {
        let requests = t.join().unwrap();
        println!("tile {rank}: verified 768 rows in {requests} list requests");
    }

    // ---- simulated Fig. 17: open / read / close per method.
    println!("\nsimulated 6-client tile read (Fig. 17):");
    println!(
        "{:<20} {:>10} {:>10} {:>10} {:>10}",
        "method", "open s", "read s", "close s", "requests"
    );
    let cost = CostConfig::paper_default();
    let meta = metadata_rtt_ns(&cost) as f64 / 1e9;
    for method in [Method::Multiple, Method::DataSieving, Method::List] {
        let mut sim = SimCluster::new(8, IodConfig::default(), cost);
        sim.seed_warm(FileHandle(7), &layout, wall.file_size());
        let cfg = MethodConfig::paper_default();
        let jobs: Vec<ClientJob> = (0..wall.clients())
            .map(|rank| {
                let req = wall.request_for(rank).expect("tile request");
                let plan =
                    pvfs::core::plan(method, IoKind::Read, &req, FileHandle(7), layout, &cfg)
                        .expect("plan");
                let len = req.total_len() as usize;
                ClientJob {
                    plan,
                    user: vec![0u8; len],
                }
            })
            .collect();
        let (report, _) = sim.run(jobs).expect("simulate");
        println!(
            "{:<20} {:>10.4} {:>10.4} {:>10.4} {:>10}",
            method.name(),
            meta,
            report.seconds(),
            meta,
            report.total_requests()
        );
    }
    Ok(())
}
