//! A tour of PVFS user-controlled striping (Fig. 2): how logical file
//! bytes map onto I/O servers, and how the choice of stripe parameters
//! changes which servers a noncontiguous access touches.
//!
//! ```text
//! cargo run --example striping
//! ```

use pvfs::client::PvfsFile;
use pvfs::net::LiveCluster;
use pvfs::types::{Region, StripeLayout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = LiveCluster::spawn(8);
    let client = cluster.client();

    println!("stripe mapping for three layouts over an 8-server cluster:\n");
    for (name, layout) in [
        (
            "paper default (8-way, 16 KiB)",
            StripeLayout::paper_default(8),
        ),
        (
            "narrow (4-way from node 2, 4 KiB)",
            StripeLayout::new(2, 4, 4096)?,
        ),
        (
            "wide-striped small (8-way, 1 KiB)",
            StripeLayout::new(0, 8, 1024)?,
        ),
    ] {
        println!("-- {name} --");
        for offset in [0u64, 10_000, 100_000, 1 << 20] {
            let (server, local) = layout.to_local(offset);
            println!("  logical {offset:>9} -> {server} local offset {local}");
        }
        // Which servers does a 150-byte strided pattern hit?
        let small = Region::new(5_000, 150);
        let big = Region::new(0, 512 * 1024);
        println!(
            "  150 B access touches {:?}; 512 KiB access touches {} servers",
            layout
                .servers_touched(small)
                .iter()
                .map(|s| s.0)
                .collect::<Vec<_>>(),
            layout.servers_touched(big).len()
        );
        println!();
    }

    // Write through one layout, confirm the data lands where the map
    // says by reading through an independently opened handle.
    let layout = StripeLayout::new(2, 4, 4096)?;
    let mut f = PvfsFile::create(&client, "/pvfs/striping-demo", layout)?;
    let data: Vec<u8> = (0..40_000u32).map(|i| (i % 256) as u8).collect();
    f.write_at(0, &data)?;
    f.close()?;

    let mut g = PvfsFile::open(&cluster.client(), "/pvfs/striping-demo")?;
    assert_eq!(g.layout(), layout);
    let mut back = vec![0u8; data.len()];
    g.read_at(0, &mut back)?;
    assert_eq!(back, data);
    println!(
        "wrote and re-read {} bytes through layout base={} pcount={} ssize={}",
        data.len(),
        layout.base,
        layout.pcount,
        layout.ssize
    );
    println!("file size per the I/O daemons: {}", g.size()?);
    Ok(())
}
