//! FLASH I/O checkpoint write (§4.3 of the paper) under each
//! noncontiguous access method — live mini-cluster for correctness,
//! simulated Chiba City cluster for Fig. 15-style timing.
//!
//! ```text
//! cargo run --release --example flash_io [nprocs] [blocks]
//! ```

use pvfs::client::PvfsFile;
use pvfs::core::{IoKind, Method, MethodConfig};
use pvfs::net::LiveCluster;
use pvfs::server::IodConfig;
use pvfs::sim::CostConfig;
use pvfs::simcluster::{ClientJob, SimCluster};
use pvfs::types::{FileHandle, StripeLayout};
use pvfs::workloads::FlashIo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let nprocs: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4);
    let blocks: u64 = args.next().map(|s| s.parse()).transpose()?.unwrap_or(8);
    let flash = FlashIo::scaled(nprocs, blocks);
    println!(
        "FLASH I/O: {nprocs} procs × {blocks} blocks; {} bytes/proc, {} mem fragments/proc, {} file regions/proc",
        flash.data_bytes_per_proc(),
        flash.mem_region_count(),
        flash.file_region_count()
    );

    // ---- live correctness pass: every proc checkpoints with list I/O
    // and the file is verified afterwards.
    let cluster = LiveCluster::spawn(8);
    let layout = StripeLayout::paper_default(8);
    let setup = cluster.client();
    PvfsFile::create(&setup, "/pvfs/flash.chk", layout)?.close()?;
    let mut writers = Vec::new();
    for p in 0..nprocs {
        let client = cluster.client();
        writers.push(std::thread::spawn(move || {
            let mut f = PvfsFile::open(&client, "/pvfs/flash.chk").expect("open");
            let req = FlashIo::scaled(nprocs, blocks)
                .request_for(p)
                .expect("request");
            // Fill this proc's mesh with a recognizable value.
            let mut mem = vec![0u8; FlashIo::scaled(nprocs, blocks).mem_bytes() as usize];
            mem.fill(p as u8 + 1);
            f.write_list(&req.mem, &req.file, &mem, Method::List)
                .expect("checkpoint");
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    // Verify: every proc's chunks carry its value.
    let mut reader = PvfsFile::open(&cluster.client(), "/pvfs/flash.chk")?;
    let mut chunk = vec![0u8; 4096];
    for p in 0..nprocs {
        let off = flash.file_chunk_offset(3, blocks / 2, p);
        reader.read_at(off, &mut chunk)?;
        assert!(
            chunk.iter().all(|b| *b == p as u8 + 1),
            "proc {p} chunk corrupt"
        );
    }
    println!("live checkpoint verified across {nprocs} writer threads");

    // ---- simulated timing pass (Fig. 15): all three paper methods.
    println!("\nsimulated Chiba City checkpoint times:");
    println!("{:<20} {:>12} {:>12}", "method", "seconds", "requests");
    for method in [Method::Multiple, Method::DataSieving, Method::List] {
        let mut sim = SimCluster::new(8, IodConfig::default(), CostConfig::paper_default());
        let cfg = MethodConfig::paper_default();
        let jobs: Vec<ClientJob> = (0..nprocs)
            .map(|p| {
                let req = flash.request_for(p).expect("request");
                let plan =
                    pvfs::core::plan(method, IoKind::Write, &req, FileHandle(7), layout, &cfg)
                        .expect("plan");
                ClientJob {
                    plan,
                    user: vec![p as u8 + 1; flash.mem_bytes() as usize],
                }
            })
            .collect();
        let (report, _) = sim.run(jobs).expect("simulate");
        println!(
            "{:<20} {:>12.2} {:>12}",
            method.name(),
            report.seconds(),
            report.total_requests()
        );
    }
    Ok(())
}
