//! Quickstart: spawn an in-process PVFS cluster, create a striped file,
//! and perform contiguous and noncontiguous (list I/O) accesses.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pvfs::client::PvfsFile;
use pvfs::core::Method;
use pvfs::net::LiveCluster;
use pvfs::types::{RegionList, StripeLayout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A live cluster: 8 I/O daemon threads + 1 manager thread, the
    // paper's server count.
    let cluster = LiveCluster::spawn(8);
    let client = cluster.client();
    println!(
        "spawned a PVFS cluster with {} I/O servers",
        cluster.n_servers()
    );

    // User-controlled striping (Fig. 2): base node 0, all 8 servers,
    // the paper's default 16 KiB stripe size.
    let layout = StripeLayout::paper_default(8);
    let mut file = PvfsFile::create(&client, "/pvfs/quickstart.dat", layout)?;
    println!(
        "created {} striped {}-way, {} B stripes",
        file.path(),
        layout.pcount,
        layout.ssize
    );

    // Contiguous write and read-back.
    let payload: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    file.write_at(0, &payload)?;
    let mut back = vec![0u8; payload.len()];
    file.read_at(0, &mut back)?;
    assert_eq!(back, payload);
    println!(
        "contiguous write/read of {} bytes OK (file size {})",
        payload.len(),
        file.size()?
    );

    // A noncontiguous access: every other 1 KiB block, gathered into a
    // contiguous buffer — the paper's pvfs_read_list interface.
    let file_regions = RegionList::from_pairs((0..64u64).map(|i| (i * 2048, 1024)))?;
    let mem_regions = RegionList::contiguous(0, file_regions.total_len());
    let mut gathered = vec![0u8; file_regions.total_len() as usize];

    for method in [Method::Multiple, Method::DataSieving, Method::List] {
        gathered.fill(0);
        let report = file.read_list(&mem_regions, &file_regions, &mut gathered, method)?;
        // All methods must see the same bytes...
        for (i, region) in file_regions.iter().enumerate() {
            let got = &gathered[i * 1024..(i + 1) * 1024];
            let want = &payload[region.offset as usize..region.end() as usize];
            assert_eq!(got, want, "method {method} returned wrong bytes");
        }
        // ...but at very different request counts.
        println!(
            "{method:<20} -> {:>4} requests over {} rounds",
            report.requests, report.rounds
        );
    }

    // List I/O writes back a noncontiguous update in one pass.
    let update = vec![0xABu8; file_regions.total_len() as usize];
    file.write_list(&mem_regions, &file_regions, &update, Method::List)?;
    let mut check = vec![0u8; 1024];
    file.read_at(2048, &mut check)?;
    assert_eq!(check, vec![0xABu8; 1024]);
    println!("list I/O write verified");

    file.close()?;
    Ok(())
}
